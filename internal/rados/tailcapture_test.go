package rados

// tailcapture_test.go pins the tail-latency capture contract: slow-op
// retention is exact, not sampled. With the tracer sampling 1-in-64 and
// a latency spike injected on one replica OSD, EVERY over-threshold
// write must land in the slow ring with its phase breakdown — the OSDs
// self-promote their hops onto the reply when their local time crosses
// the shared threshold, whether or not the request carried a trace id —
// and the critical-path analyzer must name the straggler OSD's
// replicate phase. Both wire forms are held to the same contract: the
// typed fast path and the marshalled byte codec.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/telemetry/attr"
	"repro/internal/vtime"
)

// spikeOSD arms a permanent latency spike on every device of one OSD,
// leaving the rest of the cluster clean, and returns the disarm func.
func spikeOSD(c *Cluster, id int, delay time.Duration) func() {
	plan := fault.NewPlan(7, fault.Config{})
	osd := c.OSDs()[id]
	for _, st := range osd.Stores() {
		st.Disk().SetFaults(plan.InjectorWith("disk/"+st.Disk().Name(), fault.Config{
			Prob:  map[fault.Kind]float64{fault.LatencySpike: 1},
			Delay: delay,
		}))
	}
	return func() {
		for _, st := range osd.Stores() {
			st.Disk().SetFaults(nil)
		}
	}
}

// writeReplicateCount reads the always-on attribution count for the
// write class's replicate phase (0 when no traffic yet).
func writeReplicateCount() int64 {
	for _, op := range attr.Table().Ops {
		if op.Op != "write" {
			continue
		}
		for _, row := range op.Phases {
			if row.Phase == attr.PhaseReplicate {
				return row.Count
			}
		}
	}
	return 0
}

func TestTailCaptureLatencySpike(t *testing.T) {
	// Stride-misaligned sampling: 1-in-64 with ~20 ops per path means at
	// most one op per path is in the trace sample. Capture must not care.
	telemetry.Ops.SetSampleEvery(64)
	defer telemetry.Ops.SetSampleEvery(64)
	thresh := telemetry.Ops.SlowThreshold()

	attrBefore := writeReplicateCount()

	const spikedID = 2
	spiked := fmt.Sprintf("osd%d", spikedID)
	const writes = 20

	typedCluster, typedCl := newWireCluster(t, 3, 3)
	byteCluster, rawCl := newWireCluster(t, 3, 3)
	byteCl := byteClient(rawCl)

	for _, tc := range []struct {
		path string
		c    *Cluster
		cl   *Client
	}{
		{"typed", typedCluster, typedCl},
		{"bytes", byteCluster, byteCl},
	} {
		t.Run(tc.path, func(t *testing.T) {
			// 30 ms spike vs the 10 ms default threshold: with 3-way
			// replication on 3 OSDs every write touches the spiked OSD as
			// primary or replica, so every write is over threshold.
			disarm := spikeOSD(tc.c, spikedID, 30*time.Millisecond)
			defer disarm()

			data := bytes.Repeat([]byte{0xC3}, 4096)
			targets := make(map[string]bool, writes)
			var at vtime.Time
			for i := 0; i < writes; i++ {
				obj := fmt.Sprintf("tail-%s-%d", tc.path, i)
				targets[obj] = true
				// Sequential in virtual time: each write starts when the
				// previous finished, so no op queues on the client NIC and
				// the spike is the only latency source.
				_, end, err := tc.cl.Operate(at, "rbd", obj, SnapContext{}, 0,
					[]Op{{Kind: OpWrite, Off: 0, Data: data}})
				if err != nil {
					t.Fatal(err)
				}
				at = end
			}

			slow := telemetry.Ops.Slow()
			captured := map[string]telemetry.SpanRecord{}
			unsampled := 0
			for _, rec := range slow {
				if targets[rec.Target] {
					captured[rec.Target] = rec
					if !rec.Sampled {
						unsampled++
					}
				}
			}

			// 100% capture: every over-threshold write is in the ring.
			if len(captured) != writes {
				t.Fatalf("captured %d of %d over-threshold writes; slow ring holds %d",
					len(captured), writes, len(slow))
			}
			// The point of the contract: nearly all of them were outside
			// the 1-in-64 trace sample and still carry full breakdowns.
			if unsampled == 0 {
				t.Fatalf("all %d captured writes were trace-sampled; stride misalignment not exercised", writes)
			}

			stragglers := 0
			for obj, rec := range captured {
				if rec.Duration() < thresh {
					t.Errorf("%s captured below threshold: %v < %v", obj, rec.Duration(), thresh)
				}
				p := profileOf(rec)
				// Phase breakdown: the primary self-promotes its serve and
				// replicate hops (its total time includes the spiked
				// fan-out), and the spiked OSD's serve hop is harvested off
				// the reply even on untraced requests.
				if !p.serves[spiked+":serve"] {
					t.Errorf("%s (sampled=%v) missing %s serve hop: serves=%v",
						obj, rec.Sampled, spiked, p.serves)
				}
				if len(p.replicates) != 1 {
					t.Errorf("%s (sampled=%v) carries %d replicate hops, want 1",
						obj, rec.Sampled, len(p.replicates))
				}

				cp := attr.AnalyzeSpan(rec)
				for name := range p.replicates {
					if strings.HasPrefix(name, spiked+":") {
						continue // spiked OSD was the primary: no straggler child
					}
					// Spiked OSD was a replica: the analyzer must name it as
					// the straggler and blame the replicate phase.
					stragglers++
					if cp.Straggler != spiked {
						t.Errorf("%s: straggler = %q, want %s\n%s", obj, cp.Straggler, spiked, cp)
					}
					if cp.Dominant != attr.PhaseReplicate {
						t.Errorf("%s: dominant = %v, want replicate\n%s", obj, cp.Dominant, cp)
					}
				}
			}
			// With 16 PGs over 3 OSDs some writes land the spiked OSD as a
			// replica, not the primary — the straggler shape must occur.
			if stragglers == 0 {
				t.Errorf("no write had %s as a replica straggler across %d objects", spiked, writes)
			}

			// Slow ring comes back sorted by span end, newest first.
			for i := 1; i < len(slow); i++ {
				if slow[i].End > slow[i-1].End {
					t.Errorf("slow ring not sorted by end: [%d]=%d after [%d]=%d",
						i, slow[i].End, i-1, slow[i-1].End)
				}
			}
		})
	}

	// The always-on accounting saw every replicated write on both paths,
	// spiked or not — it is fed by the serve path, not the trace sample.
	if got := writeReplicateCount() - attrBefore; got < 2*writes {
		t.Errorf("attribution recorded %d write replicate phases, want >= %d", got, 2*writes)
	}
}
