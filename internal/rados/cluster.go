package rados

import (
	"fmt"
	"time"

	"repro/internal/blobstore"
	"repro/internal/crush"
	"repro/internal/fault"
	"repro/internal/kvstore"
	"repro/internal/msgr"
	"repro/internal/simdisk"
	"repro/internal/vtime"
)

// ClusterMap is the authoritative placement state (the monitor's OSDMap in
// Ceph terms). It is immutable after cluster creation — the paper's
// evaluation does not involve failures or rebalancing.
type ClusterMap struct {
	PGNum    int
	Replicas int
	OSDIDs   []int
}

// PG maps an object to its placement group.
func (m *ClusterMap) PG(pool, object string) int {
	return crush.PGForObject(pool, object, m.PGNum)
}

// OSDsFor returns the replica set (primary first) for a PG.
func (m *ClusterMap) OSDsFor(pg int) []int {
	return crush.OSDsForPG(pg, m.OSDIDs, m.Replicas)
}

// PrimaryFor returns the primary OSD for an object.
func (m *ClusterMap) PrimaryFor(pool, object string) int {
	return m.OSDsFor(m.PG(pool, object))[0]
}

// NetCost parameterizes the simulated network, mirroring §3.2's
// environment (100 Gb/s links, ~13 Gb/s measured per stream).
type NetCost struct {
	LatencyMicros   int64
	StreamGbits     float64 // per-connection achievable bandwidth
	NICGbits        float64 // per-host NIC bandwidth
	ReplicaParallel bool    // kept for ablation; replicas always parallel today
}

// DefaultNetCost returns the paper-calibrated network model.
func DefaultNetCost() NetCost {
	return NetCost{LatencyMicros: 30, StreamGbits: 13, NICGbits: 100}
}

func (n NetCost) link(nic *vtime.Resource) msgr.LinkCost {
	return msgr.LinkCost{
		Latency:       time.Duration(n.LatencyMicros) * time.Microsecond,
		StreamPerByte: vtime.PerByteOfBandwidth(n.StreamGbits * 1e9 / 8),
		NIC:           nic,
		NICPerByte:    vtime.PerByteOfBandwidth(n.NICGbits * 1e9 / 8),
	}
}

// ClusterConfig sizes a simulated cluster. The defaults reproduce the
// paper's testbed: 3 OSD nodes, 9 NVMe disks each, 3-way replication,
// 4 MB objects.
type ClusterConfig struct {
	OSDs        int
	DisksPerOSD int
	DiskSectors int64
	DiskCost    simdisk.CostModel
	PGNum       int
	Replicas    int
	Blob        blobstore.Config
	OSDCost     OSDCost
	Net         NetCost
	// EphemeralData makes the data areas cost-only (payloads discarded)
	// so multi-GiB benchmark images do not occupy RAM. Leave false for
	// correctness tests and real use.
	EphemeralData bool
}

// DefaultClusterConfig mirrors the paper's test environment (§3.2).
func DefaultClusterConfig() ClusterConfig {
	cfg := ClusterConfig{
		OSDs:        3,
		DisksPerOSD: 9,
		DiskSectors: (64 << 30) / simdisk.SectorSize, // 64 GiB per disk is ample for simulation
		DiskCost:    simdisk.DefaultCostModel(),
		PGNum:       128,
		Replicas:    3,
		OSDCost:     DefaultOSDCost(),
		Net:         DefaultNetCost(),
	}
	cfg.Blob = blobstore.Config{
		ObjectCapacity: 4<<20 + 128<<10,
		KVBytes:        2 << 30,
		CacheSectors:   16384,
		KV: kvstore.Config{
			MemtableBytes: 4 << 20,
			WALBytes:      64 << 20,
			// RocksDB-style single-writer ingest cost per entry; the
			// knob behind OMAP's large-IO collapse (§3.3, DESIGN.md).
			IngestPerEntry: 30 * time.Microsecond,
		},
	}
	return cfg
}

// Cluster is a running simulated RADOS cluster.
type Cluster struct {
	cfg  ClusterConfig
	cmap *ClusterMap
	osds []*OSD
	nics []*vtime.Resource // per-OSD cluster NICs
}

// NewCluster builds and wires a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.OSDs < 1 || cfg.DisksPerOSD < 1 {
		return nil, fmt.Errorf("rados: need at least one OSD and one disk, got %d/%d", cfg.OSDs, cfg.DisksPerOSD)
	}
	if cfg.Replicas < 1 || cfg.Replicas > cfg.OSDs {
		return nil, fmt.Errorf("rados: replicas %d out of range for %d OSDs", cfg.Replicas, cfg.OSDs)
	}
	if cfg.PGNum < 1 {
		return nil, fmt.Errorf("rados: PGNum must be positive")
	}
	cmap := &ClusterMap{PGNum: cfg.PGNum, Replicas: cfg.Replicas}
	for i := 0; i < cfg.OSDs; i++ {
		cmap.OSDIDs = append(cmap.OSDIDs, i)
	}
	c := &Cluster{cfg: cfg, cmap: cmap}

	kvSectors := cfg.Blob.KVBytes / simdisk.SectorSize
	for id := 0; id < cfg.OSDs; id++ {
		var disks []*simdisk.Disk
		// One osd-labeled handle set per OSD, shared by its disks — the
		// label-cardinality rule: resolved here at construction, never
		// on an IO path.
		devm := newDeviceMetrics(id)
		for d := 0; d < cfg.DisksPerOSD; d++ {
			disk := simdisk.New(fmt.Sprintf("osd%d/nvme%d", id, d), cfg.DiskSectors, cfg.DiskCost)
			if cfg.EphemeralData {
				// The KV partition (journal + metadata + OMAP) must be
				// retained; only the bulk data area is cost-only.
				disk.SetEphemeralFrom(kvSectors)
			}
			disk.SetMetrics(devm)
			disks = append(disks, disk)
		}
		osd, _, err := NewOSD(0, id, cmap, disks, cfg.Blob, cfg.OSDCost)
		if err != nil {
			return nil, err
		}
		c.osds = append(c.osds, osd)
		c.nics = append(c.nics, vtime.NewResource(fmt.Sprintf("osd%d/nic", id)))
	}

	// Cluster network: each ordered OSD pair gets a replication stream.
	for _, from := range c.osds {
		for _, to := range c.osds {
			if from.ID() == to.ID() {
				continue
			}
			req := cfg.Net.link(c.nics[to.ID()])    // into the target's NIC
			resp := cfg.Net.link(c.nics[from.ID()]) // back into the source's NIC
			conn := to.Server().Connect(
				fmt.Sprintf("osd%d->osd%d", from.ID(), to.ID()), req, resp)
			from.SetPeer(to.ID(), conn)
		}
	}
	return c, nil
}

// Map returns the cluster map.
func (c *Cluster) Map() *ClusterMap { return c.cmap }

// OSDs returns the daemons (for stats and fault injection in tests).
func (c *Cluster) OSDs() []*OSD { return c.osds }

// ArmFaults installs a deterministic fault plan across the cluster:
// every OSD messenger endpoint gets an injector keyed by
// "osd<ID>/msgr" and every disk one keyed by "disk/<name>", so the
// same plan replays the same failures at the same sites. Crash windows
// in the plan's config take down every OSD; use Plan.InjectorWith and
// per-OSD SetFaults to crash one. Pass nil to disarm everything.
func (c *Cluster) ArmFaults(p *fault.Plan) {
	for _, o := range c.osds {
		var srvIn *fault.Injector
		if p != nil {
			srvIn = p.Injector(fmt.Sprintf("osd%d/msgr", o.ID()))
		}
		o.Server().SetFaults(srvIn)
		for _, st := range o.Stores() {
			var dIn *fault.Injector
			if p != nil {
				dIn = p.Injector("disk/" + st.Disk().Name())
			}
			st.Disk().SetFaults(dIn)
		}
	}
}

// NewClient connects a client host (with its own NIC resource shared by
// all of its streams) to every OSD.
func (c *Cluster) NewClient(name string) *Client {
	clientNIC := vtime.NewResource(name + "/nic")
	conns := make(map[int]msgr.Conn, len(c.osds))
	for _, osd := range c.osds {
		req := c.cfg.Net.link(c.nics[osd.ID()]) // request lands on the OSD NIC
		resp := c.cfg.Net.link(clientNIC)       // response lands on the client NIC
		conns[osd.ID()] = osd.Server().Connect(
			fmt.Sprintf("%s->osd%d", name, osd.ID()), req, resp)
	}
	return &Client{cmap: c.cmap, conns: conns}
}

// Close shuts down all OSD endpoints.
func (c *Cluster) Close() {
	for _, o := range c.osds {
		o.Close()
	}
}

// DiskStats aggregates device counters across the cluster.
func (c *Cluster) DiskStats() simdisk.Stats {
	var total simdisk.Stats
	for _, o := range c.osds {
		for _, st := range o.Stores() {
			total = total.Add(st.Disk().Stats())
		}
	}
	return total
}

// KVStats aggregates metadata-store counters across the cluster.
func (c *Cluster) KVStats() kvstore.Stats {
	var total kvstore.Stats
	for _, o := range c.osds {
		for _, st := range o.Stores() {
			s := st.KV().Stats()
			total.Applies += s.Applies
			total.EntriesWritten += s.EntriesWritten
			total.Gets += s.Gets
			total.Scans += s.Scans
			total.Flushes += s.Flushes
			total.Compactions += s.Compactions
			total.BytesFlushed += s.BytesFlushed
			total.BytesCompacted += s.BytesCompacted
			total.WALBytes += s.WALBytes
		}
	}
	return total
}

// BlobStats aggregates object-store counters across the cluster.
func (c *Cluster) BlobStats() blobstore.Stats {
	var total blobstore.Stats
	for _, o := range c.osds {
		for _, st := range o.Stores() {
			s := st.Stats()
			total.Txns += s.Txns
			total.AlignedWrites += s.AlignedWrites
			total.DeferredWrites += s.DeferredWrites
			total.RMWReads += s.RMWReads
			total.CacheHits += s.CacheHits
			total.CacheMisses += s.CacheMisses
			total.Reads += s.Reads
			total.BytesWritten += s.BytesWritten
			total.BytesRead += s.BytesRead
		}
	}
	return total
}
