package rados

// metrics.go holds the package's telemetry handles. Client-side series
// are resolved once at init; OSD-side series carry an `osd` label and
// are resolved once per OSD at construction (newOSDMetrics). That is
// the label-cardinality rule the METRICS.md contract documents: label
// handles are resolved when the labeled thing is built — package init,
// NewOSD, walker start — never on the request path, so recording stays
// a pre-bound atomic add with zero allocations.

import (
	"strconv"

	"repro/internal/simdisk"
	"repro/internal/telemetry"
)

var (
	mClientRequests = telemetry.NewCounter("client_requests_total",
		"object requests issued by rados clients")
	mClientErrors = telemetry.NewCounter("client_errors_total",
		"client requests that failed (transport or dispatch)")
	mClientBytes = telemetry.NewCounter("client_bytes_total",
		"payload bytes carried by client requests (write data in, read lengths out)")
	mClientLat = telemetry.NewHistogram("client_request_vtime",
		"virtual time from client issue to reply delivery")
	mClientOpsVec = telemetry.NewCounterVec("client_ops_total",
		"client-issued object operations by kind", "op")

	mOSDRequestsVec = telemetry.NewCounterVec("osd_requests_total",
		"requests served by OSDs, by replication role and OSD id", "role", "osd")
	mOSDOpsVec = telemetry.NewCounterVec("osd_ops_total",
		"object operations executed by OSDs, by kind and OSD id", "op", "osd")
	mOSDBytesVec = telemetry.NewCounterVec("osd_bytes_total",
		"payload bytes through OSD request execution", "osd")
	mOSDErrorsVec = telemetry.NewCounterVec("osd_errors_total",
		"OSD requests that failed with a transport-level error", "osd")
	mOSDServeLatVec = telemetry.NewHistogramVec("osd_serve_vtime",
		"virtual time of OSD serve (CPU admission through local commit and replication)", "osd")
	mOSDReplicationsVec = telemetry.NewCounterVec("osd_replications_total",
		"primary-copy replication fan-outs issued", "osd")
	mOSDReplLatVec = telemetry.NewHistogramVec("osd_replicate_vtime",
		"virtual time of the replication fan-out (slowest replica ack)", "osd")

	mDevReadOps = telemetry.NewCounterVec("device_read_ops_total",
		"sector read operations issued to the OSD's simulated devices", "osd")
	mDevWriteOps = telemetry.NewCounterVec("device_write_ops_total",
		"sector write operations issued to the OSD's simulated devices", "osd")
	mDevSectorsRead = telemetry.NewCounterVec("device_sectors_read_total",
		"sectors read from the OSD's simulated devices", "osd")
	mDevSectorsWritten = telemetry.NewCounterVec("device_sectors_written_total",
		"sectors written (persisted) to the OSD's simulated devices", "osd")

	// Per-kind client counters pre-resolved into an array indexed by
	// OpKind, so the request loop records with one bounds check and no
	// map lookup.
	mClientOps [OpSetAttr + 1]*telemetry.Counter
)

func init() {
	for k := OpRead; k <= OpSetAttr; k++ {
		mClientOps[k] = mClientOpsVec.With(k.String())
	}
}

// osdMetrics is one OSD's metric identity: every osd-labeled series
// handle pre-resolved at construction, plus the OSD's pre-rendered
// trace hop names ("osd3:serve") so the serve path never formats a
// string.
type osdMetrics struct {
	primary, replica *telemetry.Counter
	ops              [OpSetAttr + 1]*telemetry.Counter
	bytes, errors    *telemetry.Counter
	serveLat         *telemetry.Histogram
	replications     *telemetry.Counter
	replLat          *telemetry.Histogram

	serveHop, replHop string
}

func newOSDMetrics(id int) *osdMetrics {
	osd := strconv.Itoa(id)
	m := &osdMetrics{
		primary:      mOSDRequestsVec.With("primary", osd),
		replica:      mOSDRequestsVec.With("replica", osd),
		bytes:        mOSDBytesVec.With(osd),
		errors:       mOSDErrorsVec.With(osd),
		serveLat:     mOSDServeLatVec.With(osd),
		replications: mOSDReplicationsVec.With(osd),
		replLat:      mOSDReplLatVec.With(osd),
		serveHop:     "osd" + osd + ":serve",
		replHop:      "osd" + osd + ":replicate",
	}
	for k := OpRead; k <= OpSetAttr; k++ {
		m.ops[k] = mOSDOpsVec.With(k.String(), osd)
	}
	return m
}

// newDeviceMetrics resolves one OSD's device-series handles; all of the
// OSD's disks share them (the counters are atomic).
func newDeviceMetrics(id int) *simdisk.DeviceMetrics {
	osd := strconv.Itoa(id)
	return &simdisk.DeviceMetrics{
		ReadOps:        mDevReadOps.With(osd),
		WriteOps:       mDevWriteOps.With(osd),
		SectorsRead:    mDevSectorsRead.With(osd),
		SectorsWritten: mDevSectorsWritten.With(osd),
	}
}

// countOps records the per-kind op counters and returns the request's
// payload byte weight (write-side data plus read-side lengths).
func countOps(ops []Op, perKind *[OpSetAttr + 1]*telemetry.Counter) int64 {
	var bytes int64
	for i := range ops {
		op := &ops[i]
		if k := int(op.Kind); k > 0 && k < len(perKind) && perKind[k] != nil {
			perKind[k].Inc()
		}
		bytes += int64(len(op.Data))
		if op.Kind == OpRead {
			bytes += op.Len
		}
		for _, p := range op.Pairs {
			bytes += int64(len(p.Key) + len(p.Value))
		}
	}
	return bytes
}
