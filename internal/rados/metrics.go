package rados

// metrics.go holds the package's telemetry handles, resolved once at
// init so the request paths record through pre-bound series with zero
// allocations (see METRICS.md for the series contract).

import "repro/internal/telemetry"

var (
	mClientRequests = telemetry.NewCounter("client_requests_total",
		"object requests issued by rados clients")
	mClientErrors = telemetry.NewCounter("client_errors_total",
		"client requests that failed (transport or dispatch)")
	mClientBytes = telemetry.NewCounter("client_bytes_total",
		"payload bytes carried by client requests (write data in, read lengths out)")
	mClientLat = telemetry.NewHistogram("client_request_vtime",
		"virtual time from client issue to reply delivery")
	mClientOpsVec = telemetry.NewCounterVec("client_ops_total",
		"client-issued object operations by kind", "op")

	mOSDRequestsVec = telemetry.NewCounterVec("osd_requests_total",
		"requests served by OSDs, by replication role", "role")
	mOSDOpsVec = telemetry.NewCounterVec("osd_ops_total",
		"object operations executed by OSDs, by kind", "op")
	mOSDBytes = telemetry.NewCounter("osd_bytes_total",
		"payload bytes through OSD request execution")
	mOSDErrors = telemetry.NewCounter("osd_errors_total",
		"OSD requests that failed with a transport-level error")
	mOSDServeLat = telemetry.NewHistogram("osd_serve_vtime",
		"virtual time of OSD serve (CPU admission through local commit and replication)")
	mOSDReplications = telemetry.NewCounter("osd_replications_total",
		"primary-copy replication fan-outs issued")
	mOSDReplLat = telemetry.NewHistogram("osd_replicate_vtime",
		"virtual time of the replication fan-out (slowest replica ack)")

	mOSDPrimary = mOSDRequestsVec.With("primary")
	mOSDReplica = mOSDRequestsVec.With("replica")

	// Per-kind counters pre-resolved into arrays indexed by OpKind, so
	// the request loops record with one bounds check and no map lookup.
	mClientOps [OpSetAttr + 1]*telemetry.Counter
	mOSDOps    [OpSetAttr + 1]*telemetry.Counter
)

func init() {
	for k := OpRead; k <= OpSetAttr; k++ {
		mClientOps[k] = mClientOpsVec.With(k.String())
		mOSDOps[k] = mOSDOpsVec.With(k.String())
	}
}

// countOps records the per-kind op counters and returns the request's
// payload byte weight (write-side data plus read-side lengths).
func countOps(ops []Op, perKind *[OpSetAttr + 1]*telemetry.Counter) int64 {
	var bytes int64
	for i := range ops {
		op := &ops[i]
		if k := int(op.Kind); k > 0 && k < len(perKind) && perKind[k] != nil {
			perKind[k].Inc()
		}
		bytes += int64(len(op.Data))
		if op.Kind == OpRead {
			bytes += op.Len
		}
		for _, p := range op.Pairs {
			bytes += int64(len(p.Key) + len(p.Value))
		}
	}
	return bytes
}
