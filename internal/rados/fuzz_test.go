package rados

import (
	"bytes"
	"testing"

	"repro/internal/msgr"
)

// fuzzSeedRequests are valid wire messages seeding the corpus with every
// op kind and both large (referenced) and small (inlined) payloads.
func fuzzSeedRequests() [][]byte {
	reqs := []*Request{
		{Pool: "rbd", Object: "rbd_data.img.0000", Ops: []Op{{Kind: OpRead, Off: 4096, Len: 8192}}},
		{Pool: "rbd", Object: "o", SnapID: 3, SnapSeq: 9, Replica: true, Ops: []Op{
			{Kind: OpWrite, Off: 0, Data: bytes.Repeat([]byte{0xC3}, 4096)},
			{Kind: OpOmapSet, Pairs: []Pair{{Key: []byte("iv.0"), Value: bytes.Repeat([]byte{7}, 16)}, {Key: []byte("k"), Value: nil}}},
			{Kind: OpSetAttr, Key: []byte("rados.snapset"), Data: []byte("v")},
		}},
		{Pool: "", Object: "", Ops: []Op{
			{Kind: OpOmapGetRange, Key: []byte("iv."), Key2: []byte("iv/"), Len: 42},
			{Kind: OpStat},
			{Kind: OpDelete},
			{Kind: OpTruncate, Off: 123},
			{Kind: OpGetAttr, Key: []byte("a")},
			{Kind: OpOmapDel, Pairs: []Pair{{Key: []byte("x")}}},
		}},
	}
	out := make([][]byte, len(reqs))
	for i, q := range reqs {
		out[i] = q.Marshal()
	}
	return out
}

// FuzzUnmarshalRequest pins the request codec: no panic on arbitrary
// input, and on any accepted input the parsed form is a marshal fixed
// point (unmarshal∘marshal = id), with the scatter-gather encoding and
// WireLen agreeing with the flat codec byte for byte.
func FuzzUnmarshalRequest(f *testing.F) {
	for _, seed := range fuzzSeedRequests() {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		q, err := UnmarshalRequest(b)
		if err != nil {
			return
		}
		m := q.Marshal()
		q2, err := UnmarshalRequest(m)
		if err != nil {
			t.Fatalf("re-unmarshal of own marshal failed: %v", err)
		}
		m2 := q2.Marshal()
		if !bytes.Equal(m, m2) {
			t.Fatalf("marshal not a fixed point:\n%x\n%x", m, m2)
		}
		segs, hdr := q.MarshalV(nil)
		_ = hdr
		if joined := msgr.JoinSegs(segs); !bytes.Equal(joined, m) {
			t.Fatalf("MarshalV diverges from Marshal:\n%x\n%x", joined, m)
		}
		if q.WireLen() != len(m) {
			t.Fatalf("WireLen %d != len(Marshal) %d", q.WireLen(), len(m))
		}
	})
}

// FuzzUnmarshalReply is the reply-side twin of FuzzUnmarshalRequest.
func FuzzUnmarshalReply(f *testing.F) {
	seeds := []*Reply{
		{Results: []Result{{Status: StatusOK, Size: 77, Data: bytes.Repeat([]byte{1}, 4096)}}},
		{Results: []Result{
			{Status: StatusNotFound},
			{Status: StatusOK, Pairs: []Pair{{Key: []byte("iv.0"), Value: bytes.Repeat([]byte{9}, 16)}}},
			{Status: StatusInvalid, Data: []byte("short")},
		}},
		{},
	}
	for _, p := range seeds {
		f.Add(p.Marshal())
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := UnmarshalReply(b)
		if err != nil {
			return
		}
		m := p.Marshal()
		p2, err := UnmarshalReply(m)
		if err != nil {
			t.Fatalf("re-unmarshal of own marshal failed: %v", err)
		}
		m2 := p2.Marshal()
		if !bytes.Equal(m, m2) {
			t.Fatalf("marshal not a fixed point:\n%x\n%x", m, m2)
		}
		segs, _ := p.MarshalV(nil)
		if joined := msgr.JoinSegs(segs); !bytes.Equal(joined, m) {
			t.Fatalf("MarshalV diverges from Marshal:\n%x\n%x", joined, m)
		}
		if p.WireLen() != len(m) {
			t.Fatalf("WireLen %d != len(Marshal) %d", p.WireLen(), len(m))
		}
	})
}
