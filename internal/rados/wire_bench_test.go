package rados

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/msgr"
	"repro/internal/simdisk"
	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// byteOnlyConn hides a connection's typed fast path, forcing the byte
// codec — the loopback compatibility oracle.
type byteOnlyConn struct{ msgr.Conn }

// benchClusterConfig sizes a small cluster for wire-path measurements.
func benchClusterConfig(osds, replicas int) ClusterConfig {
	cfg := DefaultClusterConfig()
	cfg.OSDs = osds
	cfg.Replicas = replicas
	cfg.DisksPerOSD = 1
	cfg.DiskSectors = (1 << 30) / simdisk.SectorSize
	cfg.PGNum = 16
	cfg.Blob.ObjectCapacity = 4 << 20
	cfg.Blob.KVBytes = 256 << 20
	cfg.Blob.KV.MemtableBytes = 4 << 20
	cfg.Blob.KV.WALBytes = 16 << 20
	return cfg
}

func newWireCluster(tb testing.TB, osds, replicas int) (*Cluster, *Client) {
	tb.Helper()
	c, err := NewCluster(benchClusterConfig(osds, replicas))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(c.Close)
	return c, c.NewClient("bench-client")
}

// byteClient returns a client whose connections refuse typed dispatch,
// so every request crosses the scatter-gather byte codec.
func byteClient(cl *Client) *Client {
	conns := make(map[int]msgr.Conn, len(cl.conns))
	for id, conn := range cl.conns {
		conns[id] = byteOnlyConn{conn}
	}
	return &Client{cmap: cl.cmap, conns: conns}
}

// BenchmarkWireRoundtrip measures the client↔OSD wire path end to end.
// The in-process sub-benchmarks are the zero-copy fast path: with
// -benchmem, their B/op must stay payload-independent (no payload-sized
// copies or allocations per op in steady state — the CI benchmark gate
// pins this). The bytecodec sub-benchmarks run the identical ops through
// the scatter-gather byte encoding for comparison.
func BenchmarkWireRoundtrip(b *testing.B) {
	for _, size := range []int64{4096, 65536} {
		_, typed := newWireCluster(b, 1, 1)
		byteCl := byteClient(typed)
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i)
		}
		dst := make([]byte, size)

		run := func(name string, cl *Client, useDst bool) {
			// Steady state: object exists, caches warm.
			if _, err := cl.Write(0, "rbd", "obj", SnapContext{}, 0, data); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/write/%dB", name, size), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(size)
				for i := 0; i < b.N; i++ {
					if _, err := cl.Write(0, "rbd", "obj", SnapContext{}, 0, data); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/read/%dB", name, size), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(size)
				ops := []Op{{Kind: OpRead, Off: 0, Len: size}}
				if useDst {
					ops[0].Dst = dst
				}
				for i := 0; i < b.N; i++ {
					res, _, err := cl.Operate(0, "rbd", "obj", SnapContext{}, 0, ops)
					if err != nil {
						b.Fatal(err)
					}
					if res[0].Status != StatusOK {
						b.Fatal(res[0].Status)
					}
				}
			})
		}
		run("inproc", typed, true)
		run("bytecodec", byteCl, false)
	}

	// Replicated write over the typed path: the forward shares the
	// request payload by reference with every replica.
	_, typed := newWireCluster(b, 3, 3)
	data := make([]byte, 65536)
	if _, err := typed.Write(0, "rbd", "obj", SnapContext{}, 0, data); err != nil {
		b.Fatal(err)
	}
	b.Run("inproc/write-replicated/65536B", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(65536)
		for i := 0; i < b.N; i++ {
			if _, err := typed.Write(0, "rbd", "obj", SnapContext{}, 0, data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestInProcRoundtripAllocBudget is the allocation budget behind the
// zero-copy claim: on the in-process fast path, a write+read round trip
// must perform zero payload-sized heap allocations — the per-op
// allocation count stays flat as the payload grows 16x, and the
// allocated bytes per op stay far below one payload.
func TestInProcRoundtripAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting under -short")
	}
	_, cl := newWireCluster(t, 1, 1)

	roundtrip := func(data, dst []byte) {
		if _, err := cl.Write(0, "rbd", "obj", SnapContext{}, 0, data); err != nil {
			t.Fatal(err)
		}
		res, _, err := cl.Operate(0, "rbd", "obj", SnapContext{}, 0,
			[]Op{{Kind: OpRead, Off: 0, Len: int64(len(dst)), Dst: dst}})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Status != StatusOK {
			t.Fatal(res[0].Status)
		}
	}

	measure := func(size int64) (allocsPerOp, bytesPerOp float64) {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i * 7)
		}
		dst := make([]byte, size)
		// Warm the object, locks, snapinfo and buffer pools.
		for i := 0; i < 8; i++ {
			roundtrip(data, dst)
		}
		const rounds = 100
		allocsPerOp = testing.AllocsPerRun(rounds, func() { roundtrip(data, dst) })
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < rounds; i++ {
			roundtrip(data, dst)
		}
		runtime.ReadMemStats(&after)
		bytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / rounds
		if !bytes.Equal(data, dst) {
			t.Fatal("round trip corrupted payload")
		}
		return allocsPerOp, bytesPerOp
	}

	allocs4k, bytes4k := measure(4096)
	allocs64k, bytes64k := measure(65536)
	t.Logf("4 KiB: %.1f allocs/op, %.0f B/op; 64 KiB: %.1f allocs/op, %.0f B/op",
		allocs4k, bytes4k, allocs64k, bytes64k)

	// Payload independence: growing the payload 16x must not add
	// allocations (a single payload copy anywhere would).
	if allocs64k > allocs4k+2 {
		t.Errorf("allocs/op scale with payload: %.1f at 4 KiB vs %.1f at 64 KiB", allocs4k, allocs64k)
	}
	// Absolute budget: a 64 KiB write + 64 KiB read round trip moves
	// 128 KiB of payload; the fixed per-op bookkeeping (request/reply
	// structs, results, KV batch entries, WAL staging) must stay under a
	// small fraction of one payload.
	if bytes64k > 16<<10 {
		t.Errorf("allocated %.0f B/op for a 64 KiB round trip — payload-sized copy on the fast path?", bytes64k)
	}
}

// TestTypedBytePathParity drives two identical clusters through the two
// wire forms with the same op sequence: results and virtual completion
// times must match exactly, because the typed path charges WireLen — the
// precise byte-codec size — to the same cost model.
func TestTypedBytePathParity(t *testing.T) {
	// The two clients interleave draws from the shared trace sampler; a
	// sampled op carries serve/replicate hops in its reply (more wire
	// bytes), so sampling one path's op but not its twin would split the
	// clocks. Untraced requests are what parity is about — disable
	// sampling for the duration.
	telemetry.Ops.SetSampleEvery(1 << 30)
	defer telemetry.Ops.SetSampleEvery(64)

	_, typedCl := newWireCluster(t, 3, 3)
	_, rawCl := newWireCluster(t, 3, 3)
	byteCl := byteClient(rawCl)

	type step struct {
		name string
		ops  []Op
		snap SnapContext
	}
	iv := bytes.Repeat([]byte{0xAB}, 16)
	steps := []step{
		{"write-4k", []Op{{Kind: OpWrite, Off: 0, Data: bytes.Repeat([]byte{1}, 4096)}}, SnapContext{}},
		{"write-omap", []Op{
			{Kind: OpWrite, Off: 4096, Data: bytes.Repeat([]byte{2}, 8192)},
			{Kind: OpOmapSet, Pairs: []Pair{{Key: []byte("iv.0"), Value: iv}, {Key: []byte("iv.1"), Value: iv}}},
		}, SnapContext{}},
		{"snap-write", []Op{{Kind: OpWrite, Off: 0, Data: bytes.Repeat([]byte{3}, 4096)}}, SnapContext{Seq: 1}},
		{"read", []Op{{Kind: OpRead, Off: 0, Len: 12288}}, SnapContext{}},
		{"omap-range", []Op{{Kind: OpOmapGetRange, Key: []byte("iv."), Key2: []byte("iv/")}}, SnapContext{}},
		{"stat-attr", []Op{{Kind: OpStat}}, SnapContext{}},
	}

	at := vtime.Time(0)
	for _, s := range steps {
		resT, endT, errT := typedCl.Operate(at, "rbd", "parity-obj", s.snap, 0, s.ops)
		resB, endB, errB := byteCl.Operate(at, "rbd", "parity-obj", s.snap, 0, s.ops)
		if (errT == nil) != (errB == nil) {
			t.Fatalf("%s: error divergence: typed=%v byte=%v", s.name, errT, errB)
		}
		if errT != nil {
			continue
		}
		if endT != endB {
			t.Errorf("%s: virtual time diverged: typed=%d byte=%d", s.name, endT, endB)
		}
		if len(resT) != len(resB) {
			t.Fatalf("%s: result count diverged", s.name)
		}
		for i := range resT {
			if resT[i].Status != resB[i].Status || resT[i].Size != resB[i].Size {
				t.Errorf("%s op %d: status/size diverged: %+v vs %+v", s.name, i, resT[i], resB[i])
			}
			if !bytes.Equal(resT[i].Data, resB[i].Data) {
				t.Errorf("%s op %d: data diverged", s.name, i)
			}
			if len(resT[i].Pairs) != len(resB[i].Pairs) {
				t.Errorf("%s op %d: pair count diverged", s.name, i)
				continue
			}
			for j := range resT[i].Pairs {
				if !bytes.Equal(resT[i].Pairs[j].Key, resB[i].Pairs[j].Key) ||
					!bytes.Equal(resT[i].Pairs[j].Value, resB[i].Pairs[j].Value) {
					t.Errorf("%s op %d pair %d diverged", s.name, i, j)
				}
			}
		}
		at = endT
	}
}

// TestReadIntoDst pins the Dst contract: the in-process read lands in
// the caller's buffer (result data aliases it), sparse reads still
// report NotFound without touching presence semantics, and a byte-codec
// read of the same object returns identical bytes even though Dst never
// crosses the wire.
func TestReadIntoDst(t *testing.T) {
	_, cl := newWireCluster(t, 1, 1)
	data := bytes.Repeat([]byte{0x5A}, 8192)
	if _, err := cl.Write(0, "rbd", "obj", SnapContext{}, 0, data); err != nil {
		t.Fatal(err)
	}

	dst := make([]byte, 8192)
	res, _, err := cl.Operate(0, "rbd", "obj", SnapContext{}, 0,
		[]Op{{Kind: OpRead, Off: 0, Len: 8192, Dst: dst}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != StatusOK {
		t.Fatal(res[0].Status)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("Dst not filled by in-process read")
	}
	if len(res[0].Data) != len(dst) || &res[0].Data[0] != &dst[0] {
		t.Fatal("in-process read result should alias Dst")
	}

	// Byte codec: Dst must not cross the wire; the server allocates.
	byteCl := byteClient(cl)
	res, _, err = byteCl.Operate(0, "rbd", "obj", SnapContext{}, 0,
		[]Op{{Kind: OpRead, Off: 0, Len: 8192, Dst: dst}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res[0].Data, data) {
		t.Fatal("byte-codec read diverged")
	}
	if &res[0].Data[0] == &dst[0] {
		t.Fatal("byte-codec read cannot alias a client-local buffer")
	}

	// Missing object: Dst contents are unspecified, status tells.
	res, _, err = cl.Operate(0, "rbd", "ghost", SnapContext{}, 0,
		[]Op{{Kind: OpRead, Off: 0, Len: 4096, Dst: make([]byte, 4096)}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != StatusNotFound {
		t.Fatalf("ghost read: %v", res[0].Status)
	}
}
