// Package rados implements a miniature RADOS: replicated object storage
// with atomic multi-op transactions, OMAP, attributes and self-managed
// snapshots, served by OSD daemons over the msgr transport. It is the
// substrate substitution for the paper's Ceph cluster (DESIGN.md §2): the
// experiments need RADOS' structural path — client → primary OSD →
// replicas → per-disk object stores — and its transaction atomicity,
// both of which are real here.
package rados

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// OpKind enumerates object operations.
type OpKind uint8

// Operation kinds. Writes (everything except OpRead, OpStat, OpGetAttr,
// OpOmapGetRange) mutate and are replicated.
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpTruncate
	OpDelete
	OpStat
	OpOmapSet
	OpOmapDel
	OpOmapGetRange
	OpGetAttr
	OpSetAttr
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpTruncate:
		return "truncate"
	case OpDelete:
		return "delete"
	case OpStat:
		return "stat"
	case OpOmapSet:
		return "omap-set"
	case OpOmapDel:
		return "omap-del"
	case OpOmapGetRange:
		return "omap-get-range"
	case OpGetAttr:
		return "getattr"
	case OpSetAttr:
		return "setattr"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Mutates reports whether the op kind changes object state.
func (k OpKind) Mutates() bool {
	switch k {
	case OpRead, OpStat, OpGetAttr, OpOmapGetRange:
		return false
	}
	return true
}

// Pair is a key-value pair for OMAP and attribute operations.
type Pair struct {
	Key   []byte
	Value []byte
}

// Op is a single object operation inside a request. Field use by kind:
//
//	OpRead:         Off, Len
//	OpWrite:        Off, Data
//	OpTruncate:     Off (the new size)
//	OpDelete:       —
//	OpStat:         —
//	OpOmapSet:      Pairs
//	OpOmapDel:      Pairs (keys only)
//	OpOmapGetRange: Key (lo), Key2 (hi, empty = end), Len (limit, 0 = all)
//	OpGetAttr:      Key
//	OpSetAttr:      Key, Data
type Op struct {
	Kind  OpKind
	Off   int64
	Len   int64
	Key   []byte
	Key2  []byte
	Data  []byte
	Pairs []Pair
}

// Status is a per-op result code.
type Status int32

// Result statuses.
const (
	StatusOK Status = iota
	StatusNotFound
	StatusInvalid
	StatusNoSpace
	StatusError
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not-found"
	case StatusInvalid:
		return "invalid"
	case StatusNoSpace:
		return "no-space"
	default:
		return "error"
	}
}

// Err converts a non-OK status to an error.
func (s Status) Err() error {
	if s == StatusOK {
		return nil
	}
	switch s {
	case StatusNotFound:
		return ErrNotFound
	case StatusInvalid:
		return ErrInvalid
	case StatusNoSpace:
		return ErrNoSpace
	default:
		return errors.New("rados: operation failed")
	}
}

// Sentinel errors mapped from statuses.
var (
	ErrNotFound = errors.New("rados: object not found")
	ErrInvalid  = errors.New("rados: invalid operation")
	ErrNoSpace  = errors.New("rados: out of space")
)

// Result is the outcome of one op.
type Result struct {
	Status Status
	Data   []byte
	Pairs  []Pair
	Size   int64
}

// SnapContext accompanies writes: Seq is the most recent snapshot id of
// the image; a write to an object whose last write predates Seq triggers
// clone-on-write. The zero SnapContext means "no snapshots".
type SnapContext struct {
	Seq uint64
}

// Request is one client→OSD (or primary→replica) message.
type Request struct {
	Pool    string
	Object  string
	SnapID  uint64 // read source: 0 = head, else snapshot id
	SnapSeq uint64 // write snap context
	Replica bool   // internal: apply locally, do not re-replicate
	Ops     []Op
}

// Reply carries one Result per request op.
type Reply struct {
	Results []Result
}

// ---- wire encoding ----

// ErrWire reports a malformed message.
var ErrWire = errors.New("rados: malformed message")

type wireWriter struct{ buf []byte }

func (w *wireWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *wireWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *wireWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *wireWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *wireWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *wireWriter) str(s string) { w.bytes([]byte(s)) }
func (w *wireWriter) pairs(ps []Pair) {
	w.u32(uint32(len(ps)))
	for _, p := range ps {
		w.bytes(p.Key)
		w.bytes(p.Value)
	}
}

type wireReader struct {
	buf []byte
	off int
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = ErrWire
	}
}

func (r *wireReader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *wireReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *wireReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *wireReader) i64() int64 { return int64(r.u64()) }

func (r *wireReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	v := make([]byte, n)
	copy(v, r.buf[r.off:r.off+n])
	r.off += n
	return v
}

func (r *wireReader) str() string { return string(r.bytes()) }

// pairs decodes a pair vector with batched allocation: a first pass over
// the wire bytes sums the payload lengths, then every key and value is
// copied into one shared arena. OMAP-heavy replies (the per-block IV
// reads of the omap layout) used to pay two allocations per pair here;
// now a reply costs two regardless of pair count.
func (r *wireReader) pairs() []Pair {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.buf) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	// Pass 1: measure.
	save := r.off
	total := 0
	for i := 0; i < n; i++ {
		for j := 0; j < 2; j++ {
			l := int(r.u32())
			if r.err != nil || l < 0 || r.off+l > len(r.buf) {
				r.fail()
				return nil
			}
			r.off += l
			total += l
		}
	}
	// Pass 2: decode into the arena.
	r.off = save
	arena := make([]byte, 0, total)
	ps := make([]Pair, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 2; j++ {
			l := int(r.u32())
			ko := len(arena)
			arena = append(arena, r.buf[r.off:r.off+l]...)
			r.off += l
			s := arena[ko:len(arena):len(arena)]
			if j == 0 {
				ps[i].Key = s
			} else {
				ps[i].Value = s
			}
		}
	}
	return ps
}

// Marshal serializes a request.
func (q *Request) Marshal() []byte {
	w := &wireWriter{}
	w.str(q.Pool)
	w.str(q.Object)
	w.u64(q.SnapID)
	w.u64(q.SnapSeq)
	if q.Replica {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u32(uint32(len(q.Ops)))
	for _, op := range q.Ops {
		w.u8(uint8(op.Kind))
		w.i64(op.Off)
		w.i64(op.Len)
		w.bytes(op.Key)
		w.bytes(op.Key2)
		w.bytes(op.Data)
		w.pairs(op.Pairs)
	}
	return w.buf
}

// UnmarshalRequest parses a request.
func UnmarshalRequest(b []byte) (*Request, error) {
	r := &wireReader{buf: b}
	q := &Request{
		Pool:    r.str(),
		Object:  r.str(),
		SnapID:  r.u64(),
		SnapSeq: r.u64(),
		Replica: r.u8() == 1,
	}
	n := int(r.u32())
	if r.err != nil || n < 0 || n > 1<<20 {
		return nil, ErrWire
	}
	q.Ops = make([]Op, 0, n)
	for i := 0; i < n; i++ {
		op := Op{
			Kind:  OpKind(r.u8()),
			Off:   r.i64(),
			Len:   r.i64(),
			Key:   r.bytes(),
			Key2:  r.bytes(),
			Data:  r.bytes(),
			Pairs: r.pairs(),
		}
		if r.err != nil {
			return nil, r.err
		}
		q.Ops = append(q.Ops, op)
	}
	return q, r.err
}

// Marshal serializes a reply.
func (p *Reply) Marshal() []byte {
	w := &wireWriter{}
	w.u32(uint32(len(p.Results)))
	for _, res := range p.Results {
		w.u32(uint32(res.Status))
		w.i64(res.Size)
		w.bytes(res.Data)
		w.pairs(res.Pairs)
	}
	return w.buf
}

// UnmarshalReply parses a reply.
func UnmarshalReply(b []byte) (*Reply, error) {
	r := &wireReader{buf: b}
	n := int(r.u32())
	if r.err != nil || n < 0 || n > 1<<20 {
		return nil, ErrWire
	}
	p := &Reply{Results: make([]Result, 0, n)}
	for i := 0; i < n; i++ {
		res := Result{
			Status: Status(r.u32()),
			Size:   r.i64(),
			Data:   r.bytes(),
			Pairs:  r.pairs(),
		}
		if r.err != nil {
			return nil, r.err
		}
		p.Results = append(p.Results, res)
	}
	return p, r.err
}
