// Package rados implements a miniature RADOS: replicated object storage
// with atomic multi-op transactions, OMAP, attributes and self-managed
// snapshots, served by OSD daemons over the msgr transport. It is the
// substrate substitution for the paper's Ceph cluster (DESIGN.md §2): the
// experiments need RADOS' structural path — client → primary OSD →
// replicas → per-disk object stores — and its transaction atomicity,
// both of which are real here.
package rados

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// OpKind enumerates object operations.
type OpKind uint8

// Operation kinds. Writes (everything except OpRead, OpStat, OpGetAttr,
// OpOmapGetRange) mutate and are replicated.
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpTruncate
	OpDelete
	OpStat
	OpOmapSet
	OpOmapDel
	OpOmapGetRange
	OpGetAttr
	OpSetAttr
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpTruncate:
		return "truncate"
	case OpDelete:
		return "delete"
	case OpStat:
		return "stat"
	case OpOmapSet:
		return "omap-set"
	case OpOmapDel:
		return "omap-del"
	case OpOmapGetRange:
		return "omap-get-range"
	case OpGetAttr:
		return "getattr"
	case OpSetAttr:
		return "setattr"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Mutates reports whether the op kind changes object state.
func (k OpKind) Mutates() bool {
	switch k {
	case OpRead, OpStat, OpGetAttr, OpOmapGetRange:
		return false
	}
	return true
}

// Pair is a key-value pair for OMAP and attribute operations.
type Pair struct {
	Key   []byte
	Value []byte
}

// Op is a single object operation inside a request. Field use by kind:
//
//	OpRead:         Off, Len
//	OpWrite:        Off, Data
//	OpTruncate:     Off (the new size)
//	OpDelete:       —
//	OpStat:         —
//	OpOmapSet:      Pairs
//	OpOmapDel:      Pairs (keys only)
//	OpOmapGetRange: Key (lo), Key2 (hi, empty = end), Len (limit, 0 = all)
//	OpGetAttr:      Key
//	OpSetAttr:      Key, Data
type Op struct {
	Kind  OpKind
	Off   int64
	Len   int64
	Key   []byte
	Key2  []byte
	Data  []byte
	Pairs []Pair

	// Dst, when non-nil on an OpRead with len(Dst) == Len, is the
	// caller-owned destination buffer for the in-process fast path: the
	// OSD reads straight into it and the result's Data aliases it, so a
	// fetched block lands in the client's (typically pooled) buffer with
	// zero intermediate copies. It is client-local plumbing — never
	// marshaled — so reads that cross the byte codec allocate at the
	// server exactly as before. Callers providing Dst must treat its
	// contents as unspecified unless the op's result status is OK.
	Dst []byte
}

// Status is a per-op result code.
type Status int32

// Result statuses.
const (
	StatusOK Status = iota
	StatusNotFound
	StatusInvalid
	StatusNoSpace
	StatusError
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not-found"
	case StatusInvalid:
		return "invalid"
	case StatusNoSpace:
		return "no-space"
	default:
		return "error"
	}
}

// Err converts a non-OK status to an error.
func (s Status) Err() error {
	if s == StatusOK {
		return nil
	}
	switch s {
	case StatusNotFound:
		return ErrNotFound
	case StatusInvalid:
		return ErrInvalid
	case StatusNoSpace:
		return ErrNoSpace
	default:
		return errors.New("rados: operation failed")
	}
}

// Sentinel errors mapped from statuses.
var (
	ErrNotFound = errors.New("rados: object not found")
	ErrInvalid  = errors.New("rados: invalid operation")
	ErrNoSpace  = errors.New("rados: out of space")
)

// Result is the outcome of one op.
type Result struct {
	Status Status
	Data   []byte
	Pairs  []Pair
	Size   int64
}

// SnapContext accompanies writes: Seq is the most recent snapshot id of
// the image; a write to an object whose last write predates Seq triggers
// clone-on-write. The zero SnapContext means "no snapshots".
type SnapContext struct {
	Seq uint64
}

// Request is one client→OSD (or primary→replica) message.
type Request struct {
	Pool    string
	Object  string
	SnapID  uint64 // read source: 0 = head, else snapshot id
	SnapSeq uint64 // write snap context
	TraceID uint64 // wire trace context: 0 = untraced
	Replica bool   // internal: apply locally, do not re-replicate
	Ops     []Op

	// Span, when non-nil, is the telemetry trace for this request. Like
	// Op.Dst it is client-local plumbing — never marshaled, absent from
	// WireLen — and a span admits one writer at a time, so the
	// replication fan-out clears it on forwards (replicas run on their
	// own goroutines). The trace *context* travels anyway: TraceID is a
	// real header field on both wire forms, servers answer traced
	// requests with their serve hops in Reply.Hops, and the client (or
	// the forwarding primary) merges those back into the span — so
	// replica serves and byte-codec crossings stitch into one timeline.
	Span *telemetry.Span

	// AttrClass is the request's attribution class (an attr op index),
	// precomputed by the client so the transport can attribute wire time
	// without rescanning the op vector. Client-local plumbing like Span:
	// never marshaled, absent from WireLen, and preserved by the
	// replication fan-out's struct copy.
	AttrClass int
}

// TraceSpan exposes the request's span through msgr.SpanCarrier, so the
// transport can record its hops without importing this package.
func (r *Request) TraceSpan() *telemetry.Span { return r.Span }

// AttrOp exposes the request's attribution class through
// msgr.AttrCarrier, so the transport can feed the wire phase of the
// always-on attribution histograms without importing this package.
func (r *Request) AttrOp() int { return r.AttrClass }

// Reply carries one Result per request op, plus the server-side trace
// hops (the OSD's serve timing and, on a primary's reply, the merged
// replica hops and the replication fan-out). Hops is empty on untraced
// requests unless the serve crossed the slow-op threshold — OSDs
// self-promote over-threshold serves so the tail is always captured —
// so tracing costs wire bytes only on sampled or slow ops; both wire
// forms carry it identically, so WireLen stays a pure function of
// message content.
type Reply struct {
	Results []Result
	Hops    []telemetry.Hop
}

// ---- wire encoding ----
//
// Messages exist in two interchangeable forms (DESIGN.md "wire forms"):
//
//   - The byte codec: Marshal/Unmarshal produce and parse the flat
//     little-endian encoding. It is the TCP and loopback form and the
//     compatibility oracle the fuzz targets pin. Unmarshal is zero-copy:
//     decoded Key/Data/Pair slices alias the input buffer, which the
//     caller must therefore treat as immutable and unpooled for the
//     lifetime of the decoded message.
//   - The scatter-gather form: MarshalV packs every fixed field and
//     small payload into a caller-provided (typically pooled) header
//     buffer and references — not copies — large payloads, yielding a
//     segment list whose concatenation is byte-identical to Marshal.
//     Transports forward the segments directly (vectored socket writes);
//     the typed in-process path skips encoding entirely and charges
//     WireLen instead.

// ErrWire reports a malformed message.
var ErrWire = errors.New("rados: malformed message")

// segRefCutoff is the smallest payload MarshalV references instead of
// copying into the header segment. Below it (OMAP keys, IVs, tags) the
// copy is cheaper than the extra segments it would take to carry the
// length prefix and the payload separately.
const segRefCutoff = 256

type wireReader struct {
	buf []byte
	off int
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = ErrWire
	}
}

func (r *wireReader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *wireReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *wireReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *wireReader) i64() int64 { return int64(r.u64()) }

// bytes returns the next length-prefixed field as a view into the input
// buffer — zero-copy; see the package wire-form notes on input ownership.
func (r *wireReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	v := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

func (r *wireReader) str() string { return string(r.bytes()) }

// pairs decodes a pair vector. Keys and values alias the input buffer
// (zero-copy), so a reply's OMAP pairs cost one []Pair allocation total
// regardless of pair count — the per-block IV reads of the omap layout
// used to pay two copies per pair here.
func (r *wireReader) pairs() []Pair {
	n := int(r.u32())
	// Every pair needs at least its two length prefixes, which bounds a
	// hostile count before the []Pair allocation.
	if r.err != nil || n < 0 || n > (len(r.buf)-r.off)/8 {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	ps := make([]Pair, n)
	for i := 0; i < n; i++ {
		ps[i].Key = r.bytes()
		ps[i].Value = r.bytes()
		if r.err != nil {
			return nil
		}
	}
	return ps
}

// pairsWireLen is the encoded size of a pair vector.
func pairsWireLen(ps []Pair) int {
	n := 4
	for _, p := range ps {
		n += 8 + len(p.Key) + len(p.Value)
	}
	return n
}

// WireLen reports the exact byte-codec encoding size of the request —
// len(q.Marshal()) without marshaling. The typed in-process transport
// charges it to the network cost model so both wire forms cost the same
// virtual time.
func (q *Request) WireLen() int {
	n := 4 + len(q.Pool) + 4 + len(q.Object) + 8 + 8 + 8 + 1 + 4
	for _, op := range q.Ops {
		n += 1 + 8 + 8 + 4 + len(op.Key) + 4 + len(op.Key2) + 4 + len(op.Data) + pairsWireLen(op.Pairs)
	}
	return n
}

// WireLen reports the exact byte-codec encoding size of the reply.
func (p *Reply) WireLen() int {
	n := 4
	for _, res := range p.Results {
		n += 4 + 8 + 4 + len(res.Data) + pairsWireLen(res.Pairs)
	}
	n += 4
	for _, h := range p.Hops {
		n += 4 + len(h.Name) + 8 + 8
	}
	return n
}

// segWriter builds the scatter-gather encoding: fixed fields and small
// payloads accumulate in hdr (caller-provided, typically pooled), while
// payloads of at least segRefCutoff bytes become reference segments.
// Flushed header runs stay valid even when a later append reallocates
// hdr: their bytes are already written and never touched again. With
// inlineAll set, every payload is copied into hdr instead — the flat
// Marshal form, encoded in exactly one WireLen-sized buffer.
type segWriter struct {
	hdr       []byte
	segs      [][]byte
	runStart  int
	inlineAll bool
}

func (w *segWriter) flushRun() {
	if len(w.hdr) > w.runStart {
		w.segs = append(w.segs, w.hdr[w.runStart:len(w.hdr):len(w.hdr)])
		w.runStart = len(w.hdr)
	}
}

func (w *segWriter) u8(v uint8)   { w.hdr = append(w.hdr, v) }
func (w *segWriter) u32(v uint32) { w.hdr = binary.LittleEndian.AppendUint32(w.hdr, v) }
func (w *segWriter) u64(v uint64) { w.hdr = binary.LittleEndian.AppendUint64(w.hdr, v) }
func (w *segWriter) i64(v int64)  { w.u64(uint64(v)) }

func (w *segWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	if !w.inlineAll && len(b) >= segRefCutoff {
		w.flushRun()
		w.segs = append(w.segs, b)
		return
	}
	w.hdr = append(w.hdr, b...)
}

func (w *segWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.hdr = append(w.hdr, s...)
}

func (w *segWriter) pairs(ps []Pair) {
	w.u32(uint32(len(ps)))
	for _, p := range ps {
		w.bytes(p.Key)
		w.bytes(p.Value)
	}
}

func marshalRequestInto(q *Request, w *segWriter) {
	w.str(q.Pool)
	w.str(q.Object)
	w.u64(q.SnapID)
	w.u64(q.SnapSeq)
	w.u64(q.TraceID)
	if q.Replica {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u32(uint32(len(q.Ops)))
	for i := range q.Ops {
		op := &q.Ops[i]
		w.u8(uint8(op.Kind))
		w.i64(op.Off)
		w.i64(op.Len)
		w.bytes(op.Key)
		w.bytes(op.Key2)
		w.bytes(op.Data)
		w.pairs(op.Pairs)
	}
	w.flushRun()
}

func marshalReplyInto(p *Reply, w *segWriter) {
	w.u32(uint32(len(p.Results)))
	for i := range p.Results {
		res := &p.Results[i]
		w.u32(uint32(res.Status))
		w.i64(res.Size)
		w.bytes(res.Data)
		w.pairs(res.Pairs)
	}
	w.u32(uint32(len(p.Hops)))
	for i := range p.Hops {
		h := &p.Hops[i]
		w.str(h.Name)
		w.i64(int64(h.Start))
		w.i64(int64(h.End))
	}
	w.flushRun()
}

// MarshalV encodes the request as a scatter-gather segment list whose
// concatenation is byte-identical to Marshal. hdr is the header scratch
// buffer (pass a pooled slice; its contents are overwritten) and is
// returned grown so the caller can recycle it once the transport call
// has completed. Payload segments reference the request's own slices —
// nothing payload-sized is copied.
func (q *Request) MarshalV(hdr []byte) (segs [][]byte, hdrOut []byte) {
	w := segWriter{hdr: hdr[:0]}
	marshalRequestInto(q, &w)
	return w.segs, w.hdr
}

// Marshal serializes a request with the flat byte codec: one exact
// WireLen-sized allocation, everything inline.
func (q *Request) Marshal() []byte {
	w := segWriter{hdr: make([]byte, 0, q.WireLen()), inlineAll: true}
	marshalRequestInto(q, &w)
	return w.hdr
}

// MarshalV encodes the reply as a scatter-gather segment list; see
// Request.MarshalV for the contract.
func (p *Reply) MarshalV(hdr []byte) (segs [][]byte, hdrOut []byte) {
	w := segWriter{hdr: hdr[:0]}
	marshalReplyInto(p, &w)
	return w.segs, w.hdr
}

// Marshal serializes a reply with the flat byte codec: one exact
// WireLen-sized allocation, everything inline.
func (p *Reply) Marshal() []byte {
	w := segWriter{hdr: make([]byte, 0, p.WireLen()), inlineAll: true}
	marshalReplyInto(p, &w)
	return w.hdr
}

// UnmarshalRequest parses a request. The returned request aliases b:
// Key/Key2/Data and pair slices point into it, so the caller must keep b
// immutable (and out of any buffer pool) for the lifetime of the result.
func UnmarshalRequest(b []byte) (*Request, error) {
	r := &wireReader{buf: b}
	q := &Request{
		Pool:    r.str(),
		Object:  r.str(),
		SnapID:  r.u64(),
		SnapSeq: r.u64(),
		TraceID: r.u64(),
		Replica: r.u8() == 1,
	}
	n := int(r.u32())
	// Every op occupies at least its fixed fields plus four empty
	// vectors, which bounds a hostile count before the ops allocation.
	if r.err != nil || n < 0 || n > (len(b)-r.off)/33 {
		return nil, ErrWire
	}
	q.Ops = make([]Op, 0, n)
	for i := 0; i < n; i++ {
		op := Op{
			Kind:  OpKind(r.u8()),
			Off:   r.i64(),
			Len:   r.i64(),
			Key:   r.bytes(),
			Key2:  r.bytes(),
			Data:  r.bytes(),
			Pairs: r.pairs(),
		}
		if r.err != nil {
			return nil, r.err
		}
		q.Ops = append(q.Ops, op)
	}
	if r.off != len(b) {
		return nil, ErrWire
	}
	return q, r.err
}

// UnmarshalReply parses a reply. Like UnmarshalRequest, the result
// aliases b.
func UnmarshalReply(b []byte) (*Reply, error) {
	r := &wireReader{buf: b}
	n := int(r.u32())
	// Fixed fields plus two empty vectors bound a hostile result count.
	if r.err != nil || n < 0 || n > (len(b)-r.off)/20 {
		return nil, ErrWire
	}
	p := &Reply{Results: make([]Result, 0, n)}
	for i := 0; i < n; i++ {
		res := Result{
			Status: Status(r.u32()),
			Size:   r.i64(),
			Data:   r.bytes(),
			Pairs:  r.pairs(),
		}
		if r.err != nil {
			return nil, r.err
		}
		p.Results = append(p.Results, res)
	}
	nh := int(r.u32())
	// Fixed times plus an empty name bound a hostile hop count. Hop
	// names cross the codec as owned strings (str copies), so they never
	// alias b.
	if r.err != nil || nh < 0 || nh > (len(b)-r.off)/20 {
		return nil, ErrWire
	}
	for i := 0; i < nh; i++ {
		h := telemetry.Hop{
			Name:  r.str(),
			Start: vtime.Time(r.i64()),
			End:   vtime.Time(r.i64()),
		}
		if r.err != nil {
			return nil, r.err
		}
		p.Hops = append(p.Hops, h)
	}
	if r.off != len(b) {
		return nil, ErrWire
	}
	return p, r.err
}

// skipBytes advances past one length-prefixed field without aliasing it.
func (r *wireReader) skipBytes() {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return
	}
	r.off += n
}

// skipPairs advances past an encoded pair vector.
func (r *wireReader) skipPairs() {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > (len(r.buf)-r.off)/8 {
		r.fail()
		return
	}
	for i := 0; i < n; i++ {
		r.skipBytes()
		r.skipBytes()
	}
}

// replyWireHops decodes only the trace-hop vector of an encoded reply,
// skipping the results without allocating. The replication ack path
// uses it to harvest promoted hops off every byte-codec reply: with no
// hops present (the common, untraced-and-fast case) it costs a linear
// scan and zero allocations. Malformed input yields nil — the caller
// only wanted hops, and the full decode path still validates replies
// that matter.
func replyWireHops(b []byte) []telemetry.Hop {
	r := &wireReader{buf: b}
	n := int(r.u32())
	if r.err != nil || n < 0 || n > (len(b)-r.off)/20 {
		return nil
	}
	for i := 0; i < n; i++ {
		r.u32() // status
		r.u64() // size
		r.skipBytes()
		r.skipPairs()
		if r.err != nil {
			return nil
		}
	}
	nh := int(r.u32())
	if r.err != nil || nh <= 0 || nh > (len(b)-r.off)/20 {
		return nil
	}
	hops := make([]telemetry.Hop, 0, nh)
	for i := 0; i < nh; i++ {
		h := telemetry.Hop{
			Name:  r.str(), // owned copy; never aliases b
			Start: vtime.Time(r.i64()),
			End:   vtime.Time(r.i64()),
		}
		if r.err != nil {
			return nil
		}
		hops = append(hops, h)
	}
	return hops
}
