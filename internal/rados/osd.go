package rados

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/blobstore"
	"repro/internal/bufpool"
	"repro/internal/crush"
	"repro/internal/msgr"
	"repro/internal/simdisk"
	"repro/internal/telemetry"
	"repro/internal/telemetry/attr"
	"repro/internal/vtime"
)

// OSDCost models OSD CPU work per request.
type OSDCost struct {
	PerRequest time.Duration // dispatch, context, PG lookup
	PerOp      time.Duration // per operation in the request
	PerByte    float64       // ns per payload byte (checksum/copy)
	Cores      int           // CPU parallelism
}

// DefaultOSDCost reflects a Xeon-class OSD node that is not CPU-bound at
// large IO but pays real per-op costs at small IO.
func DefaultOSDCost() OSDCost {
	return OSDCost{
		PerRequest: 20 * time.Microsecond,
		PerOp:      5 * time.Microsecond,
		PerByte:    0.15, // ≈6.6 GB/s of checksumming+copy per core
		Cores:      8,
	}
}

// OSD is one object storage daemon: several local disks, each with a
// blobstore, serving requests for the PGs it hosts and replicating writes
// to its peers.
type OSD struct {
	id     int
	cmap   *ClusterMap
	stores []*blobstore.Store
	cpu    *vtime.MultiResource
	cost   OSDCost
	srv    *msgr.InProcServer
	met    *osdMetrics

	mu       sync.Mutex
	peers    map[int]msgr.Conn
	objLocks map[string]*sync.Mutex
	snapInfo map[string]*snapInfo
}

// snapInfo is the cached per-object snapshot bookkeeping ("SnapSet").
type snapInfo struct {
	createdSeq uint64   // snap context seq when the head was created
	lastSeq    uint64   // snap context seq at the last write
	clones     []uint64 // snapshot ids with preserved clones, ascending
}

const snapAttr = "rados.snapset"

func (si *snapInfo) marshal() []byte {
	b := make([]byte, 0, 20+8*len(si.clones))
	b = binary.LittleEndian.AppendUint64(b, si.createdSeq)
	b = binary.LittleEndian.AppendUint64(b, si.lastSeq)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(si.clones)))
	for _, c := range si.clones {
		b = binary.LittleEndian.AppendUint64(b, c)
	}
	return b
}

func unmarshalSnapInfo(b []byte) (*snapInfo, error) {
	if len(b) < 20 {
		return nil, fmt.Errorf("rados: corrupt snapset (%d bytes)", len(b))
	}
	si := &snapInfo{
		createdSeq: binary.LittleEndian.Uint64(b[0:8]),
		lastSeq:    binary.LittleEndian.Uint64(b[8:16]),
	}
	n := int(binary.LittleEndian.Uint32(b[16:20]))
	if len(b) != 20+8*n {
		return nil, errors.New("rados: corrupt snapset clone list")
	}
	for i := 0; i < n; i++ {
		si.clones = append(si.clones, binary.LittleEndian.Uint64(b[20+8*i:]))
	}
	return si, nil
}

// NewOSD builds an OSD over its local disks.
func NewOSD(at vtime.Time, id int, cmap *ClusterMap, disks []*simdisk.Disk, blobCfg blobstore.Config, cost OSDCost) (*OSD, vtime.Time, error) {
	if cost.Cores < 1 {
		cost.Cores = 1
	}
	o := &OSD{
		id:       id,
		cmap:     cmap,
		cpu:      vtime.NewMultiResource(fmt.Sprintf("osd%d/cpu", id), cost.Cores),
		cost:     cost,
		met:      newOSDMetrics(id),
		peers:    make(map[int]msgr.Conn),
		objLocks: make(map[string]*sync.Mutex),
		snapInfo: make(map[string]*snapInfo),
	}
	for i, d := range disks {
		cfg := blobCfg
		cfg.KV.CPU = nil // KV CPU is folded into the OSD cost model
		st, end, err := blobstore.Open(at, d, cfg)
		if err != nil {
			return nil, at, fmt.Errorf("osd%d disk %d: %w", id, i, err)
		}
		at = vtime.Max(at, end)
		o.stores = append(o.stores, st)
	}
	o.srv = msgr.NewInProcServer(o.handle)
	o.srv.SetTypedHandler(o.handleTyped)
	return o, at, nil
}

// ID returns the OSD id.
func (o *OSD) ID() int { return o.id }

// Server exposes the messenger endpoint for cluster wiring.
func (o *OSD) Server() *msgr.InProcServer { return o.srv }

// Stores exposes the per-disk object stores for stats collection.
func (o *OSD) Stores() []*blobstore.Store { return o.stores }

// SetPeer wires the replication connection to another OSD.
func (o *OSD) SetPeer(id int, conn msgr.Conn) {
	o.mu.Lock()
	o.peers[id] = conn
	o.mu.Unlock()
}

// Close shuts the endpoint down.
func (o *OSD) Close() { o.srv.Close() }

func (o *OSD) lockFor(fullName string) *sync.Mutex {
	o.mu.Lock()
	defer o.mu.Unlock()
	l, ok := o.objLocks[fullName]
	if !ok {
		l = &sync.Mutex{}
		o.objLocks[fullName] = l
	}
	return l
}

// Handle is the byte-codec msgr entry point; exposed so OSDs can be
// served over any transport (real TCP, or the in-proc loopback used as
// the codec-compatibility oracle). The in-proc fast path enters through
// handleTyped instead and never touches the codec.
func (o *OSD) Handle(at vtime.Time, payload []byte) ([]byte, vtime.Time, error) {
	return o.handle(at, payload)
}

// handle services one byte-codec request.
func (o *OSD) handle(at vtime.Time, payload []byte) ([]byte, vtime.Time, error) {
	req, err := UnmarshalRequest(payload)
	if err != nil {
		return nil, at, err
	}
	reply, end, err := o.serve(at, req)
	if err != nil {
		return nil, at, err
	}
	return reply.Marshal(), end, nil
}

// handleTyped services one typed request — the in-process fast path. The
// request's payload slices are owned by the caller (they are the
// client's pooled seal buffers); everything persisted is copied by the
// blobstore/kvstore layers before serve returns, so no reference
// survives the call.
func (o *OSD) handleTyped(at vtime.Time, m msgr.Msg) (msgr.Msg, vtime.Time, error) {
	req, ok := m.(*Request)
	if !ok {
		return nil, at, fmt.Errorf("osd%d: unexpected typed message %T", o.id, m)
	}
	reply, end, err := o.serve(at, req)
	if err != nil {
		return nil, at, err
	}
	return reply, end, nil
}

// serve executes one request and its replication, shared by both wire
// forms.
func (o *OSD) serve(at vtime.Time, req *Request) (*Reply, vtime.Time, error) {
	entry := at
	m := o.met
	if req.Replica {
		m.replica.Inc()
	} else {
		m.primary.Inc()
	}
	m.bytes.Add(countOps(req.Ops, &m.ops))

	// CPU admission cost.
	var bytes int64
	mutating, hasRead := false, false
	for _, op := range req.Ops {
		bytes += int64(len(op.Data))
		for _, p := range op.Pairs {
			bytes += int64(len(p.Key) + len(p.Value))
		}
		if op.Kind.Mutates() {
			mutating = true
		} else if op.Kind == OpRead {
			hasRead = true
		}
	}
	cls := attr.OpOther
	if mutating {
		cls = attr.OpWrite
	} else if hasRead {
		cls = attr.OpRead
	}
	cpuTime := o.cost.PerRequest + time.Duration(len(req.Ops))*o.cost.PerOp +
		time.Duration(float64(bytes)*o.cost.PerByte)
	admitted := o.cpu.Use(at, cpuTime)
	// Queue phase: time lost waiting for a CPU core, excluding the work
	// itself. Observed per serve, replicas included.
	queued := admitted.Sub(at) - cpuTime
	if queued < 0 {
		queued = 0
	}
	attr.Observe(cls, attr.PhaseQueue, queued)
	at = admitted

	fullName := req.Pool + "/" + req.Object
	lock := o.lockFor(fullName)
	lock.Lock()
	results, localEnd, err := o.execute(at, fullName, req)
	lock.Unlock()
	if err != nil {
		m.errors.Inc()
		return nil, at, err
	}
	reply := &Reply{Results: results}
	// Serve phase: CPU work plus local execution, queue delay excluded
	// so the phases partition the local time. Each replica copy's serve
	// is observed on its own OSD.
	attr.Observe(cls, attr.PhaseServe, localEnd.Sub(entry)-queued)

	end := localEnd
	replicated := false
	if mutating && !req.Replica {
		end, err = o.replicate(at, req, end, reply)
		if err != nil {
			m.errors.Inc()
			return nil, at, err
		}
		// The fan-out is issued at the post-admission time, concurrent
		// with the local commit; its hop spans forward to slowest ack.
		m.replications.Inc()
		m.replLat.Observe(end.Sub(at))
		attr.Observe(cls, attr.PhaseReplicate, end.Sub(at))
		replicated = true
	}
	// Hop reporting rides the reply rather than a local span: the hop
	// list travels the wire back, so the client (and, for replica
	// forwards, the primary) merges every remote hop into the one
	// client-side timeline — including across the byte codec, where no
	// span pointer can travel. Traced requests always answer with their
	// timing; untraced ones self-promote when the serve crossed the
	// slow-op threshold, so a latency-spiked replica reports its serve
	// hop even mid-stride and the tail is captured 100% of the time.
	// The promotion reads the shared tracer threshold, so it fires
	// identically on both wire forms.
	if req.TraceID != 0 || end.Sub(entry) >= telemetry.Ops.SlowThreshold() {
		reply.Hops = append(reply.Hops, telemetry.Hop{Name: m.serveHop, Start: entry, End: localEnd})
		if replicated {
			reply.Hops = append(reply.Hops, telemetry.Hop{Name: m.replHop, Start: at, End: end})
		}
	}
	m.serveLat.Observe(end.Sub(entry))
	return reply, end, nil
}

// replicate runs primary-copy replication: the request is forwarded to
// the other replicas in parallel — typed when the peer connection allows
// it, scatter-gather marshaled otherwise — and the write is acknowledged
// when every copy is durable. For traced requests the replicas' reply
// hops are merged into reply so the client's stitched timeline includes
// every replica serve.
func (o *OSD) replicate(at vtime.Time, req *Request, end vtime.Time, reply *Reply) (vtime.Time, error) {
	pg := o.cmap.PG(req.Pool, req.Object)
	replicas := o.cmap.OSDsFor(pg)
	conns := make([]msgr.Conn, 0, len(replicas)-1)
	for _, rid := range replicas {
		if rid == o.id {
			continue
		}
		o.mu.Lock()
		conn := o.peers[rid]
		o.mu.Unlock()
		if conn == nil {
			return at, fmt.Errorf("osd%d: no peer connection to osd%d", o.id, rid)
		}
		conns = append(conns, conn)
	}
	if len(conns) == 0 {
		return end, nil
	}

	// The forward shares the request's op vector (read-only on the peer)
	// with the replica flag set, so no payload is re-staged. The span
	// pointer does NOT travel — replicas run on concurrent goroutines,
	// and a span admits a single writer — but the TraceID does (the
	// struct copy keeps it): each replica reports its serve hop in its
	// reply, and the primary merges them below, single-threaded, after
	// the acks are collected.
	fwd := *req
	fwd.Replica = true
	fwd.Span = nil
	var fwdSegs [][]byte
	var fwdHdr []byte
	for _, c := range conns {
		if _, ok := c.(msgr.TypedConn); !ok {
			fwdSegs, fwdHdr = fwd.MarshalV(bufpool.Get(wireHdrHint))
			break
		}
	}

	type repl struct {
		end  vtime.Time
		hops []telemetry.Hop
		err  error
	}
	ch := make(chan repl, len(conns))
	for _, conn := range conns {
		go func(c msgr.Conn) {
			var r repl
			// Hops are harvested from every ack, traced or not: an
			// untraced replica whose serve crossed the slow threshold
			// self-promotes its serve hop, and dropping it here would
			// blind the tail capture to the straggler.
			if tc, ok := c.(msgr.TypedConn); ok {
				var resp msgr.Msg
				resp, r.end, r.err = tc.CallTyped(at, &fwd)
				if r.err == nil {
					if rep, ok := resp.(*Reply); ok {
						r.hops = rep.Hops
					}
				}
			} else {
				var payload []byte
				payload, r.end, r.err = c.CallV(at, fwdSegs)
				if r.err == nil {
					// Hops-only decode: skips the results without
					// allocating and returns owned hop records (names are
					// string copies), so the common no-hops ack costs a
					// scan and nothing else.
					r.hops = replyWireHops(payload)
				}
			}
			ch <- r
		}(conn)
	}
	var firstErr error
	for i := 0; i < len(conns); i++ {
		r := <-ch
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		end = vtime.Max(end, r.end)
		// Ack-arrival order is nondeterministic, but the hop *set* is
		// deterministic; consumers treat hops as unordered.
		reply.Hops = append(reply.Hops, r.hops...)
	}
	bufpool.Put(fwdHdr)
	if firstErr != nil {
		return at, fmt.Errorf("osd%d: replica: %w", o.id, firstErr)
	}
	return end, nil
}

func cloneName(fullName string, snapID uint64) string {
	return fmt.Sprintf("%s@%016x", fullName, snapID)
}

// loadSnapInfo returns the cached snapset for an object, loading it from
// the store's attributes on first touch.
func (o *OSD) loadSnapInfo(at vtime.Time, st *blobstore.Store, fullName string) (*snapInfo, vtime.Time, error) {
	o.mu.Lock()
	si, ok := o.snapInfo[fullName]
	o.mu.Unlock()
	if ok {
		return si, at, nil
	}
	si = &snapInfo{}
	if st.Exists(fullName) {
		raw, found, end, err := st.GetAttr(at, fullName, snapAttr)
		if err != nil {
			return nil, at, err
		}
		at = end
		if found {
			if si, err = unmarshalSnapInfo(raw); err != nil {
				return nil, at, err
			}
		}
	}
	o.mu.Lock()
	o.snapInfo[fullName] = si
	o.mu.Unlock()
	return si, at, nil
}

// execute runs the ops against the local store. The caller holds the
// object lock.
func (o *OSD) execute(at vtime.Time, fullName string, req *Request) ([]Result, vtime.Time, error) {
	st := o.stores[crush.DiskForObject(fullName, len(o.stores))]
	mutating := false
	for _, op := range req.Ops {
		if op.Kind.Mutates() {
			mutating = true
			break
		}
	}
	if mutating {
		return o.executeWrite(at, st, fullName, req)
	}
	return o.executeRead(at, st, fullName, req)
}

func (o *OSD) executeWrite(at vtime.Time, st *blobstore.Store, fullName string, req *Request) ([]Result, vtime.Time, error) {
	si, at, err := o.loadSnapInfo(at, st, fullName)
	if err != nil {
		return nil, at, err
	}

	// Clone-on-write: preserve the pre-write state for snapshots taken
	// since the last write (§1: "overwritten data remains accessible").
	if req.SnapSeq > si.lastSeq {
		if st.Exists(fullName) {
			end, err := st.Clone(at, fullName, cloneName(fullName, req.SnapSeq))
			if err != nil {
				return nil, at, err
			}
			at = end
			si.clones = append(si.clones, req.SnapSeq)
		} else {
			si.createdSeq = req.SnapSeq
		}
		si.lastSeq = req.SnapSeq
	}

	txn := blobstore.NewTxn()
	results := make([]Result, len(req.Ops))
	doDelete := false
	for i, op := range req.Ops {
		switch op.Kind {
		case OpWrite:
			txn.Writes = append(txn.Writes, blobstore.DataWrite{Off: op.Off, Data: op.Data})
		case OpTruncate:
			txn.Truncate = op.Off
		case OpOmapSet:
			for _, p := range op.Pairs {
				txn.OmapSet = append(txn.OmapSet, blobstore.KVPair{Key: p.Key, Value: p.Value})
			}
		case OpOmapDel:
			for _, p := range op.Pairs {
				txn.OmapDel = append(txn.OmapDel, p.Key)
			}
		case OpSetAttr:
			txn.AttrSet = append(txn.AttrSet, blobstore.KVPair{Key: op.Key, Value: op.Data})
		case OpDelete:
			doDelete = true
		default:
			return nil, at, fmt.Errorf("%w: %v in write request", ErrInvalid, op.Kind)
		}
		results[i] = Result{Status: StatusOK}
	}

	if doDelete {
		// An object's snapshot clones die with its head: the snapset that
		// could resolve them is stored on the head, so deleting only the
		// head would leak the clone blobs in the store forever (and a
		// later object reusing the name could collide with stale clones).
		for _, c := range si.clones {
			end, err := st.Delete(at, cloneName(fullName, c))
			if err != nil && !errors.Is(err, blobstore.ErrNotFound) {
				return nil, at, err
			}
			if err == nil {
				at = end
			}
		}
		end, err := st.Delete(at, fullName)
		if errors.Is(err, blobstore.ErrNotFound) {
			for i := range results {
				results[i].Status = StatusNotFound
			}
			return results, at, nil
		}
		if err != nil {
			return nil, at, err
		}
		o.mu.Lock()
		delete(o.snapInfo, fullName)
		o.mu.Unlock()
		return results, end, nil
	}

	// Persist the snapset alongside the data — same transaction, so
	// data, metadata and IVs commit atomically.
	txn.AttrSet = append(txn.AttrSet, blobstore.KVPair{Key: []byte(snapAttr), Value: si.marshal()})
	end, err := st.Apply(at, fullName, txn)
	if err != nil {
		if errors.Is(err, blobstore.ErrNoSpace) {
			for i := range results {
				results[i].Status = StatusNoSpace
			}
			return results, at, nil
		}
		return nil, at, err
	}
	return results, end, nil
}

// resolveReadSource maps a snapshot read to the right clone.
func (o *OSD) resolveReadSource(at vtime.Time, st *blobstore.Store, fullName string, snapID uint64) (string, bool, vtime.Time, error) {
	if snapID == 0 {
		return fullName, st.Exists(fullName), at, nil
	}
	si, at, err := o.loadSnapInfo(at, st, fullName)
	if err != nil {
		return "", false, at, err
	}
	// An object first created while the newest snapshot was createdSeq
	// came into being *after* every snapshot with id <= createdSeq, so
	// those snapshots must not see it — through the head or any clone.
	if si.createdSeq >= snapID {
		return "", false, at, nil
	}
	// The earliest clone whose id >= snapID holds the state frozen at the
	// first write after that snapshot.
	for _, c := range si.clones {
		if c >= snapID {
			return cloneName(fullName, c), true, at, nil
		}
	}
	// No clone: the head still holds the state.
	if !st.Exists(fullName) {
		return "", false, at, nil
	}
	return fullName, true, at, nil
}

func (o *OSD) executeRead(at vtime.Time, st *blobstore.Store, fullName string, req *Request) ([]Result, vtime.Time, error) {
	src, exists, at, err := o.resolveReadSource(at, st, fullName, req.SnapID)
	if err != nil {
		return nil, at, err
	}
	results := make([]Result, len(req.Ops))
	end := at
	for i, op := range req.Ops {
		if !exists {
			results[i] = Result{Status: StatusNotFound}
			continue
		}
		switch op.Kind {
		case OpRead:
			// The in-process fast path supplies the client's own pooled
			// destination; remote reads (byte codec strips Dst) allocate.
			buf := op.Dst
			if int64(len(buf)) != op.Len {
				buf = make([]byte, op.Len)
			}
			e, err := st.Read(at, src, op.Off, buf)
			if errors.Is(err, blobstore.ErrNotFound) {
				results[i] = Result{Status: StatusNotFound}
				continue
			}
			if errors.Is(err, blobstore.ErrBounds) {
				results[i] = Result{Status: StatusInvalid}
				continue
			}
			if err != nil {
				return nil, at, err
			}
			results[i] = Result{Status: StatusOK, Data: buf}
			end = vtime.Max(end, e)
		case OpStat:
			sz, err := st.Size(src)
			if errors.Is(err, blobstore.ErrNotFound) {
				results[i] = Result{Status: StatusNotFound}
				continue
			}
			if err != nil {
				return nil, at, err
			}
			results[i] = Result{Status: StatusOK, Size: sz}
		case OpGetAttr:
			v, found, e, err := st.GetAttr(at, src, string(op.Key))
			if err != nil && !errors.Is(err, blobstore.ErrNotFound) {
				return nil, at, err
			}
			if err != nil || !found {
				results[i] = Result{Status: StatusNotFound}
				continue
			}
			results[i] = Result{Status: StatusOK, Data: v}
			end = vtime.Max(end, e)
		case OpOmapGetRange:
			hi := op.Key2
			if len(hi) == 0 {
				hi = nil // empty on the wire means "to the end"
			}
			kvs, e, err := st.OmapScan(at, src, op.Key, hi, int(op.Len))
			if err != nil {
				return nil, at, err
			}
			pairs := make([]Pair, len(kvs))
			for j, kv := range kvs {
				pairs[j] = Pair{Key: kv.Key, Value: kv.Value}
			}
			results[i] = Result{Status: StatusOK, Pairs: pairs}
			end = vtime.Max(end, e)
		default:
			return nil, at, fmt.Errorf("%w: %v in read request", ErrInvalid, op.Kind)
		}
	}
	return results, end, nil
}
