package rados

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/simdisk"
)

func testCluster(t *testing.T) (*Cluster, *Client) {
	t.Helper()
	cfg := DefaultClusterConfig()
	cfg.OSDs = 3
	cfg.DisksPerOSD = 2
	cfg.DiskSectors = (512 << 20) / simdisk.SectorSize
	cfg.PGNum = 16
	cfg.Blob.ObjectCapacity = 1 << 20
	cfg.Blob.KVBytes = 64 << 20
	cfg.Blob.KV.MemtableBytes = 256 << 10
	cfg.Blob.KV.WALBytes = 4 << 20
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, c.NewClient("client0")
}

func TestWireRoundTrip(t *testing.T) {
	req := &Request{
		Pool:    "rbd",
		Object:  "rbd_data.img.0001",
		SnapID:  7,
		SnapSeq: 9,
		Replica: true,
		Ops: []Op{
			{Kind: OpWrite, Off: 4096, Data: []byte("payload")},
			{Kind: OpOmapSet, Pairs: []Pair{{Key: []byte("k"), Value: []byte("v")}, {Key: []byte("k2"), Value: nil}}},
			{Kind: OpOmapGetRange, Key: []byte("lo"), Key2: []byte("hi"), Len: 42},
		},
	}
	got, err := UnmarshalRequest(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Pool != req.Pool || got.Object != req.Object || got.SnapID != 7 || got.SnapSeq != 9 || !got.Replica {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Ops) != 3 || got.Ops[0].Kind != OpWrite || string(got.Ops[0].Data) != "payload" {
		t.Fatalf("ops mismatch: %+v", got.Ops)
	}
	if len(got.Ops[1].Pairs) != 2 || string(got.Ops[1].Pairs[0].Key) != "k" {
		t.Fatalf("pairs mismatch: %+v", got.Ops[1].Pairs)
	}

	rep := &Reply{Results: []Result{
		{Status: StatusOK, Data: []byte("d"), Size: 5},
		{Status: StatusNotFound, Pairs: []Pair{{Key: []byte("a"), Value: []byte("b")}}},
	}}
	gotRep, err := UnmarshalReply(rep.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRep.Results) != 2 || gotRep.Results[0].Size != 5 || gotRep.Results[1].Status != StatusNotFound {
		t.Fatalf("reply mismatch: %+v", gotRep)
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	trailing := append((&Request{Pool: "p", Object: "o", Ops: []Op{{Kind: OpStat}}}).Marshal(), 0x00)
	for _, b := range [][]byte{nil, {1}, bytes.Repeat([]byte{0xFF}, 40), trailing} {
		if _, err := UnmarshalRequest(b); err == nil {
			t.Fatalf("accepted %x", b)
		}
	}
}

func TestWirePropertyRoundTrip(t *testing.T) {
	f := func(pool, object string, off int64, data []byte, key []byte) bool {
		req := &Request{Pool: pool, Object: object, Ops: []Op{
			{Kind: OpWrite, Off: off, Data: data},
			{Kind: OpGetAttr, Key: key},
		}}
		m := req.Marshal()
		got, err := UnmarshalRequest(m)
		if err != nil {
			return false
		}
		// The scatter-gather form and WireLen must agree with the flat
		// codec byte for byte — the compatibility oracle.
		segs, hdr := req.MarshalV(nil)
		joined := make([]byte, 0, len(m))
		for _, s := range segs {
			joined = append(joined, s...)
		}
		_ = hdr
		if !bytes.Equal(joined, m) || req.WireLen() != len(m) {
			return false
		}
		return got.Pool == pool && got.Object == object &&
			got.Ops[0].Off == off && bytes.Equal(got.Ops[0].Data, data) &&
			bytes.Equal(got.Ops[1].Key, key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReplyMarshalVOracle(t *testing.T) {
	rep := &Reply{Results: []Result{
		{Status: StatusOK, Data: bytes.Repeat([]byte{0x11}, 8192), Size: 8192},
		{Status: StatusOK, Pairs: []Pair{
			{Key: []byte("iv.0"), Value: bytes.Repeat([]byte{0x22}, 16)},
			{Key: []byte("big"), Value: bytes.Repeat([]byte{0x33}, 1024)},
		}},
		{Status: StatusNotFound},
	}}
	m := rep.Marshal()
	segs, _ := rep.MarshalV(nil)
	joined := make([]byte, 0, len(m))
	for _, s := range segs {
		joined = append(joined, s...)
	}
	if !bytes.Equal(joined, m) {
		t.Fatal("reply MarshalV diverges from Marshal")
	}
	if rep.WireLen() != len(m) {
		t.Fatalf("reply WireLen %d != %d", rep.WireLen(), len(m))
	}
	// Large payloads must be referenced, not copied, by MarshalV.
	found := false
	for _, s := range segs {
		if len(s) > 0 && len(rep.Results[0].Data) > 0 && &s[0] == &rep.Results[0].Data[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("large payload was copied instead of referenced")
	}
}

func TestBasicWriteRead(t *testing.T) {
	_, cl := testCluster(t)
	data := bytes.Repeat([]byte{0x5C}, 8192)
	if _, err := cl.Write(0, "rbd", "obj1", SnapContext{}, 0, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := cl.Read(0, "rbd", "obj1", 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadMissingObject(t *testing.T) {
	_, cl := testCluster(t)
	if _, _, err := cl.Read(0, "rbd", "ghost", 0, 16); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestStatAndDelete(t *testing.T) {
	_, cl := testCluster(t)
	if _, err := cl.Write(0, "rbd", "obj", SnapContext{}, 100, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	sz, _, err := cl.Stat(0, "rbd", "obj")
	if err != nil || sz != 103 {
		t.Fatalf("stat: %d %v", sz, err)
	}
	if _, err := cl.Delete(0, "rbd", "obj"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Stat(0, "rbd", "obj"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

// The paper's §3.1 requirement: data + OMAP (IV) in one atomic request.
func TestAtomicDataPlusOmapTxn(t *testing.T) {
	_, cl := testCluster(t)
	iv := bytes.Repeat([]byte{9}, 16)
	res, _, err := cl.Operate(0, "rbd", "obj", SnapContext{}, 0, []Op{
		{Kind: OpWrite, Off: 0, Data: bytes.Repeat([]byte{1}, 4096)},
		{Kind: OpOmapSet, Pairs: []Pair{{Key: []byte("iv.0"), Value: iv}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Status != StatusOK {
			t.Fatalf("op %d: %v", i, r.Status)
		}
	}
	res, _, err = cl.Operate(0, "rbd", "obj", SnapContext{}, 0, []Op{
		{Kind: OpOmapGetRange, Key: []byte("iv."), Key2: []byte("iv/")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Pairs) != 1 || !bytes.Equal(res[0].Pairs[0].Value, iv) {
		t.Fatalf("omap readback: %+v", res[0].Pairs)
	}
}

func TestAttrOps(t *testing.T) {
	_, cl := testCluster(t)
	if _, _, err := cl.Operate(0, "rbd", "hdr", SnapContext{}, 0, []Op{
		{Kind: OpSetAttr, Key: []byte("size"), Data: []byte("1073741824")},
	}); err != nil {
		t.Fatal(err)
	}
	res, _, err := cl.Operate(0, "rbd", "hdr", SnapContext{}, 0, []Op{
		{Kind: OpGetAttr, Key: []byte("size")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(res[0].Data) != "1073741824" {
		t.Fatalf("attr = %q", res[0].Data)
	}
}

// Replication: the payload must land on every replica's disks.
func TestReplicationFanout(t *testing.T) {
	c, cl := testCluster(t)
	data := bytes.Repeat([]byte{7}, 64<<10)
	if _, err := cl.Write(0, "rbd", "obj", SnapContext{}, 0, data); err != nil {
		t.Fatal(err)
	}
	// With 3-way replication the cluster-wide written bytes are >= 3x the
	// payload (data + journal copies).
	blob := c.BlobStats()
	if blob.BytesWritten < 3*int64(len(data)) {
		t.Fatalf("replication missing: %d bytes written for %d payload", blob.BytesWritten, len(data))
	}
	if blob.Txns < 3 {
		t.Fatalf("expected >=3 replica txns, got %d", blob.Txns)
	}
}

func TestSnapshotCloneOnWrite(t *testing.T) {
	_, cl := testCluster(t)
	v1 := bytes.Repeat([]byte{1}, 4096)
	v2 := bytes.Repeat([]byte{2}, 4096)
	v3 := bytes.Repeat([]byte{3}, 4096)

	// Write v1 with no snapshots.
	if _, err := cl.Write(0, "rbd", "obj", SnapContext{}, 0, v1); err != nil {
		t.Fatal(err)
	}
	// Snapshot 1 taken; write v2 under snapc{1}.
	if _, err := cl.Write(0, "rbd", "obj", SnapContext{Seq: 1}, 0, v2); err != nil {
		t.Fatal(err)
	}
	// Snapshot 2 taken; write v3 under snapc{2}.
	if _, err := cl.Write(0, "rbd", "obj", SnapContext{Seq: 2}, 0, v3); err != nil {
		t.Fatal(err)
	}

	head, _, err := cl.Read(0, "rbd", "obj", 0, 4096)
	if err != nil || !bytes.Equal(head, v3) {
		t.Fatalf("head: %v", err)
	}
	s1, _, err := cl.ReadSnap(0, "rbd", "obj", 1, 0, 4096)
	if err != nil || !bytes.Equal(s1, v1) {
		t.Fatalf("snap1 should see v1: %v", err)
	}
	s2, _, err := cl.ReadSnap(0, "rbd", "obj", 2, 0, 4096)
	if err != nil || !bytes.Equal(s2, v2) {
		t.Fatalf("snap2 should see v2: %v", err)
	}
}

func TestSnapshotUnmodifiedObjectServedByHead(t *testing.T) {
	_, cl := testCluster(t)
	v1 := []byte("stable")
	if _, err := cl.Write(0, "rbd", "obj", SnapContext{}, 0, v1); err != nil {
		t.Fatal(err)
	}
	// Snapshot 5 exists but the object is never rewritten.
	got, _, err := cl.ReadSnap(0, "rbd", "obj", 5, 0, int64(len(v1)))
	if err != nil || !bytes.Equal(got, v1) {
		t.Fatalf("snap read through head: %q %v", got, err)
	}
}

func TestSnapshotObjectCreatedAfterSnap(t *testing.T) {
	_, cl := testCluster(t)
	//

	// Object first created under snapc{3}: snapshots 1..3 predate it.
	if _, err := cl.Write(0, "rbd", "newobj", SnapContext{Seq: 3}, 0, []byte("late")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.ReadSnap(0, "rbd", "newobj", 2, 0, 4); !errors.Is(err, ErrNotFound) {
		t.Fatalf("snapshot older than object should be ENOENT, got %v", err)
	}
	// But the snapshot taken at/after creation sees it.
	got, _, err := cl.ReadSnap(0, "rbd", "newobj", 4, 0, 4)
	if err != nil || string(got) != "late" {
		t.Fatalf("later snap: %q %v", got, err)
	}
}

func TestSnapshotOmapCloned(t *testing.T) {
	// IVs must version together with data across snapshots, or random-IV
	// decryption of old snapshots would break.
	_, cl := testCluster(t)
	put := func(snapSeq uint64, iv string) {
		t.Helper()
		_, _, err := cl.Operate(0, "rbd", "obj", SnapContext{Seq: snapSeq}, 0, []Op{
			{Kind: OpWrite, Off: 0, Data: bytes.Repeat([]byte{byte(snapSeq)}, 512)},
			{Kind: OpOmapSet, Pairs: []Pair{{Key: []byte("iv.0"), Value: []byte(iv)}}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	put(0, "iv-v1")
	put(1, "iv-v2") // snapshot 1 preserves iv-v1

	res, _, err := cl.Operate(0, "rbd", "obj", SnapContext{}, 1, []Op{
		{Kind: OpOmapGetRange, Key: []byte("iv."), Key2: []byte("iv/")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Pairs) != 1 || string(res[0].Pairs[0].Value) != "iv-v1" {
		t.Fatalf("snapshot omap: %+v", res[0].Pairs)
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	_, cl := testCluster(t)
	end, err := cl.Write(1000, "rbd", "obj", SnapContext{}, 0, make([]byte, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if end <= 1000 {
		t.Fatalf("end %d not after arrival", end)
	}
	// A read arriving later completes later.
	_, end2, err := cl.Read(end, "rbd", "obj", 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if end2 <= end {
		t.Fatalf("read end %d not after %d", end2, end)
	}
}

func TestConcurrentClientsSameObject(t *testing.T) {
	_, cl := testCluster(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(i)}, 4096)
			if _, err := cl.Write(0, "rbd", "hot", SnapContext{}, int64(i)*4096, data); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All 16 stripes readable.
	for i := 0; i < 16; i++ {
		got, _, err := cl.Read(0, "rbd", "hot", int64(i)*4096, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 4096)) {
			t.Fatalf("stripe %d corrupted", i)
		}
	}
}

func TestPlacementSpreadsObjects(t *testing.T) {
	c, cl := testCluster(t)
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("rbd_data.img.%04d", i)
		if _, err := cl.Write(0, "rbd", name, SnapContext{}, 0, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	// Every OSD must hold data (3x replication over 3 OSDs means all of
	// them, but check real placement not just replication).
	for _, osd := range c.OSDs() {
		total := 0
		for _, st := range osd.Stores() {
			total += len(st.List())
		}
		if total == 0 {
			t.Fatalf("osd%d holds no objects", osd.ID())
		}
	}
}

func TestMixedReadWriteRejected(t *testing.T) {
	_, cl := testCluster(t)
	if _, err := cl.Write(0, "rbd", "obj", SnapContext{}, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	_, _, err := cl.Operate(0, "rbd", "obj", SnapContext{}, 0, []Op{
		{Kind: OpWrite, Off: 0, Data: []byte("y")},
		{Kind: OpRead, Off: 0, Len: 1},
	})
	if err == nil {
		t.Fatal("mixed read/write request should be rejected")
	}
}

func TestRandomizedAgainstModelWithSnapshots(t *testing.T) {
	_, cl := testCluster(t)
	rng := rand.New(rand.NewSource(31))
	const objSize = 64 << 10
	head := make([]byte, objSize)
	snaps := map[uint64][]byte{}
	var snapSeq uint64
	written := false

	for step := 0; step < 300; step++ {
		switch r := rng.Intn(10); {
		case r < 5: // write
			off := rng.Int63n(objSize - 1)
			n := rng.Intn(8192) + 1
			if off+int64(n) > objSize {
				n = int(objSize - off)
			}
			data := make([]byte, n)
			rng.Read(data)
			if _, err := cl.Write(0, "rbd", "model", SnapContext{Seq: snapSeq}, off, data); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			copy(head[off:], data)
			written = true
		case r < 8: // read head
			if !written {
				continue
			}
			off := rng.Int63n(objSize - 1)
			n := rng.Intn(8192) + 1
			if off+int64(n) > objSize {
				n = int(objSize - off)
			}
			got, _, err := cl.Read(0, "rbd", "model", off, int64(n))
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if !bytes.Equal(got, head[off:off+int64(n)]) {
				t.Fatalf("step %d: head read mismatch", step)
			}
		case r == 8 && written: // take snapshot
			snapSeq++
			snaps[snapSeq] = append([]byte(nil), head...)
		default: // read a random snapshot
			if len(snaps) == 0 {
				continue
			}
			id := uint64(rng.Intn(int(snapSeq))) + 1
			want := snaps[id]
			got, _, err := cl.ReadSnap(0, "rbd", "model", id, 0, objSize)
			if err != nil {
				t.Fatalf("step %d: snap %d: %v", step, id, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: snapshot %d diverged", step, id)
			}
		}
	}
}

func TestClusterConfigValidation(t *testing.T) {
	bad := DefaultClusterConfig()
	bad.OSDs = 0
	if _, err := NewCluster(bad); err == nil {
		t.Fatal("0 OSDs accepted")
	}
	bad = DefaultClusterConfig()
	bad.Replicas = 5
	bad.OSDs = 3
	if _, err := NewCluster(bad); err == nil {
		t.Fatal("replicas > OSDs accepted")
	}
	bad = DefaultClusterConfig()
	bad.PGNum = 0
	if _, err := NewCluster(bad); err == nil {
		t.Fatal("PGNum 0 accepted")
	}
}
