// Package crush provides deterministic data placement in the role of
// Ceph's CRUSH algorithm: object names map to placement groups, and
// placement groups map to an ordered set of OSDs (primary first) by
// rendezvous (highest-random-weight) hashing, which is straw2 bucket
// selection in the case of a single flat bucket of equally-weighted OSDs.
package crush

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// PGForObject maps an object to a placement group.
func PGForObject(pool, object string, pgNum int) int {
	if pgNum < 1 {
		panic("crush: pgNum must be positive")
	}
	h := fnv.New64a()
	h.Write([]byte(pool))
	h.Write([]byte{0})
	h.Write([]byte(object))
	return int(h.Sum64() % uint64(pgNum))
}

// OSDsForPG returns the ordered replica set (primary first) for a
// placement group: the n OSDs with the highest rendezvous weight. It
// returns fewer than n when the cluster is smaller than the replica
// count.
func OSDsForPG(pg int, osdIDs []int, n int) []int {
	type weighted struct {
		id int
		w  uint64
	}
	ws := make([]weighted, 0, len(osdIDs))
	var buf [16]byte
	for _, id := range osdIDs {
		h := fnv.New64a()
		binary.LittleEndian.PutUint64(buf[:8], uint64(pg))
		binary.LittleEndian.PutUint64(buf[8:], uint64(id))
		h.Write(buf[:])
		// FNV alone has weak avalanche on short structured input; a
		// murmur-style finalizer keeps primary assignment balanced.
		ws = append(ws, weighted{id: id, w: mix64(h.Sum64())})
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].w != ws[j].w {
			return ws[i].w > ws[j].w
		}
		return ws[i].id < ws[j].id
	})
	if n > len(ws) {
		n = len(ws)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = ws[i].id
	}
	return out
}

// mix64 is the 64-bit murmur3 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// DiskForObject spreads a PG's objects over an OSD's local disks.
func DiskForObject(object string, disks int) int {
	if disks < 1 {
		panic("crush: disks must be positive")
	}
	h := fnv.New32a()
	h.Write([]byte(object))
	return int(h.Sum32() % uint32(disks))
}
