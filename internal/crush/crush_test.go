package crush

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestPGDeterministic(t *testing.T) {
	a := PGForObject("rbd", "obj1", 128)
	b := PGForObject("rbd", "obj1", 128)
	if a != b {
		t.Fatal("placement not deterministic")
	}
	if a < 0 || a >= 128 {
		t.Fatalf("pg %d out of range", a)
	}
}

func TestPGPoolSeparation(t *testing.T) {
	same := 0
	for i := 0; i < 200; i++ {
		obj := fmt.Sprintf("obj%d", i)
		if PGForObject("pool-a", obj, 1024) == PGForObject("pool-b", obj, 1024) {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("pools collide too often: %d/200", same)
	}
}

func TestPGDistributionUniform(t *testing.T) {
	const pgNum = 16
	counts := make([]int, pgNum)
	const objects = 16000
	for i := 0; i < objects; i++ {
		counts[PGForObject("rbd", fmt.Sprintf("rbd_data.img.%016x", i), pgNum)]++
	}
	want := objects / pgNum
	for pg, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("pg %d has %d objects (expected near %d)", pg, c, want)
		}
	}
}

func TestOSDsForPGProperties(t *testing.T) {
	osds := []int{0, 1, 2, 3, 4}
	set := OSDsForPG(7, osds, 3)
	if len(set) != 3 {
		t.Fatalf("got %d replicas", len(set))
	}
	seen := map[int]bool{}
	for _, id := range set {
		if seen[id] {
			t.Fatal("duplicate OSD in replica set")
		}
		seen[id] = true
	}
	// Deterministic.
	again := OSDsForPG(7, osds, 3)
	for i := range set {
		if set[i] != again[i] {
			t.Fatal("replica set not deterministic")
		}
	}
	// Truncates to cluster size.
	if got := OSDsForPG(7, []int{9}, 3); len(got) != 1 || got[0] != 9 {
		t.Fatalf("small cluster: %v", got)
	}
}

// Rendezvous hashing's defining property: removing one OSD only remaps
// PGs whose set contained it; all other assignments are stable.
func TestRendezvousStability(t *testing.T) {
	all := []int{0, 1, 2, 3, 4, 5}
	without5 := []int{0, 1, 2, 3, 4}
	for pg := 0; pg < 500; pg++ {
		before := OSDsForPG(pg, all, 3)
		had5 := false
		for _, id := range before {
			if id == 5 {
				had5 = true
			}
		}
		after := OSDsForPG(pg, without5, 3)
		if !had5 {
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("pg %d moved without cause: %v -> %v", pg, before, after)
				}
			}
		}
	}
}

func TestPrimaryBalance(t *testing.T) {
	osds := []int{0, 1, 2}
	counts := map[int]int{}
	const pgs = 3000
	for pg := 0; pg < pgs; pg++ {
		counts[OSDsForPG(pg, osds, 3)[0]]++
	}
	for id, c := range counts {
		if c < pgs/3-pgs/10 || c > pgs/3+pgs/10 {
			t.Fatalf("osd %d is primary for %d/%d pgs (imbalanced)", id, c, pgs)
		}
	}
}

func TestDiskForObject(t *testing.T) {
	if DiskForObject("x", 1) != 0 {
		t.Fatal("single disk must map to 0")
	}
	f := func(s string) bool {
		d := DiskForObject(s, 9)
		return d >= 0 && d < 9 && d == DiskForObject(s, 9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { PGForObject("p", "o", 0) },
		func() { DiskForObject("o", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
