// Package repro reproduces "Rethinking Block Storage Encryption with
// Virtual Disks" (Harnik, Naor, Ofer, Ozery — HotStorage 2022) as a
// self-contained Go library.
//
// The paper's idea: virtual disks already own a virtual-to-physical
// mapping layer, so unlike physical disks they can cheaply store
// per-sector metadata — enough for a fresh random IV per 4 KiB block
// (semantically secure overwrites) and even authentication tags. The
// library implements the full system around that idea: a miniature Ceph
// RADOS (OSDs, replication, transactions, OMAP, snapshots) over simulated
// NVMe devices, an RBD-style image layer, a LUKS2-style key container,
// AES-XTS/ESSIV/EME2/GCM sector ciphers, the paper's three IV placement
// layouts, a dm-crypt+dm-integrity comparator, an fio-style workload
// engine, and a benchmark harness regenerating every figure.
//
// Beyond the paper's figures, the per-block metadata also carries a
// key-epoch tag, unlocking the key-lifecycle workloads length-preserving
// encryption cannot offer: online re-keying under live IO
// (internal/keymgr), crypto-erase discard (EncryptedImage.Discard), and
// encrypted layered clones (internal/clone) — the paper's golden-image
// scenario, where each tenant's copy-on-write clone of a shared base
// snapshot is sealed under the tenant's own key, reads resolve through
// the layer chain with per-layer keys, and an online Flatten walker can
// sever the chain under live IO.
//
// This root package is a convenience facade over the internal packages:
//
//	cluster, _ := repro.NewCluster(repro.TestClusterConfig())
//	defer cluster.Close()
//	img, _ := repro.CreateEncryptedImage(cluster.NewClient("host"),
//	    "rbd", "vol0", 64<<20, []byte("passphrase"),
//	    repro.Options{Scheme: repro.SchemeXTSRand, Layout: repro.LayoutObjectEnd})
//	img.WriteAt(0, data, 0)
//
// See DESIGN.md for the system inventory (including which substitutions
// stand in for unavailable external pieces); README.md walks through the
// paper-vs-measured benchmark harness.
package repro

import (
	"io"
	"sync"
	"time"

	"repro/internal/clone"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fio"
	"repro/internal/keymgr"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/scrub"
	"repro/internal/telemetry"
	"repro/internal/telemetry/attr"
	"repro/internal/telemetry/health"
	"repro/internal/vtime"
)

// Re-exported types: the public API surface is the facade plus these.
type (
	// Cluster is a simulated RADOS cluster (see internal/rados).
	Cluster = rados.Cluster
	// ClusterConfig sizes a cluster.
	ClusterConfig = rados.ClusterConfig
	// Client is a cluster client handle.
	Client = rados.Client
	// Image is a plain virtual disk image.
	Image = rbd.Image
	// EncryptedImage is the paper's per-sector-metadata encrypted image.
	EncryptedImage = core.EncryptedImage
	// Options selects scheme and layout.
	Options = core.Options
	// Scheme is the cipher construction.
	Scheme = core.Scheme
	// Layout is the IV placement.
	Layout = core.Layout
	// Time is a virtual timestamp.
	Time = vtime.Time
	// Duration is a span of virtual time (health windows, top frames).
	Duration = vtime.Duration
	// WorkloadSpec describes an fio-style workload.
	WorkloadSpec = fio.Spec
	// WorkloadResult is a workload measurement.
	WorkloadResult = fio.Result
	// Rekeyer drives an online key rotation (see internal/keymgr).
	Rekeyer = keymgr.Rekeyer
	// RekeyProgress is the persisted rekey cursor.
	RekeyProgress = keymgr.Progress
	// ClonedImage is a layered encrypted image (see internal/clone).
	ClonedImage = clone.Image
	// Keychain maps image names to layer passphrases for clone chains.
	Keychain = clone.Keychain
	// Flattener drives an online clone flatten (see internal/clone).
	Flattener = clone.Flattener
	// FlattenProgress is the persisted flatten cursor.
	FlattenProgress = clone.FlattenProgress
	// Scrubber drives a background integrity verification walk (see
	// internal/scrub).
	Scrubber = scrub.Scrubber
	// ScrubProgress is the persisted scrub cursor.
	ScrubProgress = scrub.Progress
	// FaultPlan is a seeded, replayable fault-injection plan (see
	// internal/fault); arm it with Cluster.ArmFaults.
	FaultPlan = fault.Plan
	// FaultConfig selects fault kinds, probabilities and crash windows.
	FaultConfig = fault.Config
	// Pacer is a virtual-time admission budget for background walkers.
	Pacer = vtime.Pacer
	// TraceRecord is one finished per-op trace span (see
	// internal/telemetry and METRICS.md).
	TraceRecord = telemetry.SpanRecord
	// AttributionReport is a point-in-time snapshot of the always-on
	// per-phase latency accounting (see internal/telemetry/attr).
	AttributionReport = attr.Report
	// SlowOp is one captured over-threshold op with its critical-path
	// analysis (straggler replica, dominant phase).
	SlowOp = attr.SlowOp
	// CriticalPath is the analyzed hop tree of one trace span.
	CriticalPath = attr.CriticalPath
	// Event is one structured lifecycle event from the process journal
	// (epoch transitions, walker start/finish, faults, repairs).
	Event = telemetry.Event
	// HealthMonitor couples a metric history ring to the declarative
	// health engine (see internal/telemetry/health and DESIGN.md).
	HealthMonitor = health.Monitor
	// HealthReport is one health evaluation: per-rule verdicts plus the
	// overall status.
	HealthReport = health.Report
	// HealthRule is one declarative SLO rule over history windows.
	HealthRule = health.Rule
)

// Schemes and layouts.
const (
	SchemeLUKS2    = core.SchemeLUKS2    // deterministic XTS baseline (no metadata)
	SchemeXTSRand  = core.SchemeXTSRand  // the paper's random-IV XTS
	SchemeGCM      = core.SchemeGCM      // authenticated (nonce+tag metadata)
	SchemeEME2Det  = core.SchemeEME2Det  // wide-block, deterministic
	SchemeEME2Rand = core.SchemeEME2Rand // wide-block with random IV

	LayoutNone      = core.LayoutNone
	LayoutUnaligned = core.LayoutUnaligned // Fig. 2a
	LayoutObjectEnd = core.LayoutObjectEnd // Fig. 2b (the paper's winner)
	LayoutOMAP      = core.LayoutOMAP      // Fig. 2c
)

// NewCluster builds and wires a simulated cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return rados.NewCluster(cfg) }

// PaperClusterConfig mirrors the paper's §3.2 testbed: 3 OSD nodes with
// 9 NVMe disks each, 3-way replication, 4 MB objects, 100 Gb/s links.
func PaperClusterConfig() ClusterConfig { return rados.DefaultClusterConfig() }

// TestClusterConfig is a small, fast cluster for examples and tests.
func TestClusterConfig() ClusterConfig {
	cfg := rados.DefaultClusterConfig()
	cfg.DisksPerOSD = 2
	cfg.DiskSectors = (1 << 30) / 4096
	cfg.PGNum = 32
	cfg.Blob.ObjectCapacity = 1<<20 + 64<<10
	cfg.Blob.KVBytes = 64 << 20
	cfg.Blob.KV.MemtableBytes = 256 << 10
	cfg.Blob.KV.WALBytes = 4 << 20
	return cfg
}

// CreateEncryptedImage creates an image, formats encryption on it and
// opens it — the three-step flow collapsed for the common case. The
// facade stripes with 1 MiB objects so it works against both
// TestClusterConfig and PaperClusterConfig object capacities; the
// benchmark harness uses the paper's 4 MB striping via internal/rbd.
func CreateEncryptedImage(client *Client, pool, name string, size int64, passphrase []byte, opts Options) (*EncryptedImage, error) {
	const objectSize = 1 << 20
	if _, err := rbd.CreateWithObjectSize(0, client, pool, name, size, objectSize); err != nil {
		return nil, err
	}
	img, _, err := rbd.Open(0, client, pool, name)
	if err != nil {
		return nil, err
	}
	if _, err := core.Format(0, img, passphrase, opts); err != nil {
		return nil, err
	}
	enc, _, err := core.Load(0, img, passphrase)
	return enc, err
}

// OpenEncryptedImage opens an existing encrypted image.
func OpenEncryptedImage(client *Client, pool, name string, passphrase []byte) (*EncryptedImage, error) {
	img, _, err := rbd.Open(0, client, pool, name)
	if err != nil {
		return nil, err
	}
	enc, _, err := core.Load(0, img, passphrase)
	return enc, err
}

// RunWorkload executes an fio-style workload against any virtual-time
// block target (an EncryptedImage satisfies fio.Target, and — for
// discard mixes — fio.Discarder).
func RunWorkload(spec WorkloadSpec, target fio.Target, start Time) (WorkloadResult, error) {
	// fio.Run reports virtual time only; the wall-clock stamp happens
	// here, outside the simulation packages.
	wallStart := time.Now()
	res, err := fio.Run(spec, target, start)
	res.WallTime = time.Since(wallStart)
	return res, err
}

// StartRekey begins an online key rotation on an encrypted image: a new
// key epoch is minted and a resumable background walk re-seals existing
// blocks while the image keeps serving IO. Drive it with Run (or Step).
func StartRekey(img *EncryptedImage) (*Rekeyer, error) {
	r, _, err := keymgr.Start(0, img)
	return r, err
}

// ResumeRekey reattaches to an interrupted key rotation after a client
// restart or crash.
func ResumeRekey(img *EncryptedImage) (*Rekeyer, error) {
	r, _, err := keymgr.Resume(0, img)
	return r, err
}

// StartScrub begins a background integrity sweep over an encrypted
// image: every present block is read and opened under its recorded key
// epoch, and blocks that fail verification are repaired from intact
// replica copies. Drive it with Run (or Step); the walk is
// crash-resumable via ResumeScrub. Only authenticated schemes
// (SchemeGCM) detect ciphertext corruption; for the length-preserving
// schemes the sweep verifies structure only.
func StartScrub(img *EncryptedImage) (*Scrubber, error) {
	s, _, err := scrub.Start(0, img)
	return s, err
}

// ResumeScrub reattaches to an interrupted integrity sweep after a
// client restart or crash.
func ResumeScrub(img *EncryptedImage) (*Scrubber, error) {
	s, _, err := scrub.Resume(0, img)
	return s, err
}

// NewFaultPlan builds a deterministic fault-injection plan: the same
// seed and config replay the same per-site failure decisions. Arm it on
// a cluster with Cluster.ArmFaults(plan); disarm with ArmFaults(nil).
func NewFaultPlan(seed int64, cfg FaultConfig) *FaultPlan { return fault.NewPlan(seed, cfg) }

// NewPacer builds a walker admission budget capping iops operations and
// bytesPerSec payload bytes per second of virtual time (non-positive =
// uncapped); hand it to Rekeyer.SetPace / Flattener.SetPace /
// Scrubber.SetPace. One pacer shared by several walkers caps their
// combined rate.
func NewPacer(iops, bytesPerSec float64) *Pacer { return vtime.NewPacer(iops, bytesPerSec) }

// CloneEncryptedImage creates childName as an encrypted copy-on-write
// clone of parentName@snapName — the golden-image flow: the child gets
// the parent's geometry, a parent link, and its OWN key container
// (keys[childName]), while inherited blocks keep decrypting under the
// parent's keys on read-through. The keychain must hold passphrases for
// every layer of the chain.
func CloneEncryptedImage(client *Client, pool, parentName, snapName, childName string, keys Keychain, opts Options) (*ClonedImage, error) {
	img, _, err := clone.Create(0, client, pool, parentName, snapName, childName, keys, opts)
	return img, err
}

// OpenClonedImage opens a layered image and its parent chain. It also
// opens flattened (or never-layered) encrypted images, which need only
// their own key.
func OpenClonedImage(client *Client, pool, name string, keys Keychain) (*ClonedImage, error) {
	img, _, err := clone.Open(0, client, pool, name, keys)
	return img, err
}

// StartFlatten begins copying every still-inherited block of a clone
// into the child (re-sealed under the child's key) so the parent link
// can be severed; drive it with Run (or Step). The walk is
// crash-resumable via ResumeFlatten.
func StartFlatten(img *ClonedImage) (*Flattener, error) {
	f, _, err := clone.StartFlatten(0, img)
	return f, err
}

// ResumeFlatten reattaches to an interrupted flatten after a client
// restart or crash.
func ResumeFlatten(img *ClonedImage) (*Flattener, error) {
	f, _, err := clone.ResumeFlatten(0, img)
	return f, err
}

// MetricsSnapshot renders every metric in the process-wide telemetry
// registry in Prometheus text exposition format (the contract is
// documented in METRICS.md).
func MetricsSnapshot() string { return telemetry.Snapshot() }

// WriteMetrics streams the same exposition to w.
func WriteMetrics(w io.Writer) (int64, error) { return telemetry.Default.WriteTo(w) }

// RecentTraces returns the most recently finished sampled per-op trace
// spans, newest first, each carrying its per-hop virtual timeline
// (client -> messenger -> OSD serve -> replicate).
func RecentTraces() []TraceRecord { return telemetry.Ops.Recent() }

// SlowTraces returns the slowest recent spans (those exceeding the
// tracer's slow-op threshold), newest first.
func SlowTraces() []TraceRecord { return telemetry.Ops.Slow() }

// Attribution snapshots the always-on per-phase latency accounting: for
// each op class (read/write/other), where its virtual time went —
// queue, wire, serve, replicate, seal/open, device — over 100% of
// traffic, not the tracer's sample (see METRICS.md "Attribution").
func Attribution() AttributionReport { return attr.Table() }

// SlowOps returns every captured over-threshold op, newest first, each
// with its critical-path analysis: the hop tree, the dominant phase,
// and the straggler replica OSD on replicated writes. Capture is
// exact — any op at or past the slow threshold lands here with its
// full phase breakdown, whether or not it was in the trace sample.
func SlowOps() []SlowOp { return attr.SlowOps() }

// SetTraceSampleEvery sets the tracer's sampling stride: one in every n
// ops gets a full wire-propagated trace (n <= 1 traces everything).
// Slow-op capture is unaffected — over-threshold ops are always kept.
func SetTraceSampleEvery(n int64) { telemetry.Ops.SetSampleEvery(n) }

// SetSlowOpThreshold sets the virtual duration at or past which an op
// is promoted into the slow ring with its phase breakdown.
func SetSlowOpThreshold(d Duration) { telemetry.Ops.SetSlowThreshold(d) }

// Events returns the structured lifecycle events journalled so far,
// newest first: key-epoch transitions, walker start/finish, fault
// firings, and replica repairs (see METRICS.md "Event journal").
func Events() []Event { return telemetry.Log.Events() }

// healthMon is the process-wide health monitor behind Health(), built
// on first use so programs that never ask for health pay nothing.
var healthMon = sync.OnceValue(func() *HealthMonitor {
	return health.NewMonitor(telemetry.Default, 0, nil)
})

// NewHealthMonitor builds a private monitor over the default registry
// with the default SLO rule set — for callers that want their own
// observation cadence (slots <= 0 uses the default ring size).
func NewHealthMonitor(slots int) *HealthMonitor {
	return health.NewMonitor(telemetry.Default, slots, nil)
}

// Observe snapshots every registered metric into the process-wide
// health monitor's history ring at virtual time at. Call it
// periodically (each frame, after each workload phase); Health
// evaluates over the recorded window.
func Observe(at Time) { healthMon().Observe(at) }

// Health records one more snapshot at virtual time at and evaluates
// the default SLO rules over the recorded history, returning per-rule
// verdicts and the overall status.
func Health(at Time) HealthReport { return healthMon().Report(at) }
