// Package repro reproduces "Rethinking Block Storage Encryption with
// Virtual Disks" (Harnik, Naor, Ofer, Ozery — HotStorage 2022) as a
// self-contained Go library.
//
// The paper's idea: virtual disks already own a virtual-to-physical
// mapping layer, so unlike physical disks they can cheaply store
// per-sector metadata — enough for a fresh random IV per 4 KiB block
// (semantically secure overwrites) and even authentication tags. The
// library implements the full system around that idea: a miniature Ceph
// RADOS (OSDs, replication, transactions, OMAP, snapshots) over simulated
// NVMe devices, an RBD-style image layer, a LUKS2-style key container,
// AES-XTS/ESSIV/EME2/GCM sector ciphers, the paper's three IV placement
// layouts, a dm-crypt+dm-integrity comparator, an fio-style workload
// engine, and a benchmark harness regenerating every figure.
//
// Beyond the paper's figures, the per-block metadata also carries a
// key-epoch tag, unlocking the key-lifecycle workloads length-preserving
// encryption cannot offer: online re-keying under live IO
// (internal/keymgr) and crypto-erase discard (EncryptedImage.Discard).
//
// This root package is a convenience facade over the internal packages:
//
//	cluster, _ := repro.NewCluster(repro.TestClusterConfig())
//	defer cluster.Close()
//	img, _ := repro.CreateEncryptedImage(cluster.NewClient("host"),
//	    "rbd", "vol0", 64<<20, []byte("passphrase"),
//	    repro.Options{Scheme: repro.SchemeXTSRand, Layout: repro.LayoutObjectEnd})
//	img.WriteAt(0, data, 0)
//
// See DESIGN.md for the system inventory (including which substitutions
// stand in for unavailable external pieces); README.md walks through the
// paper-vs-measured benchmark harness.
package repro

import (
	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/keymgr"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/vtime"
)

// Re-exported types: the public API surface is the facade plus these.
type (
	// Cluster is a simulated RADOS cluster (see internal/rados).
	Cluster = rados.Cluster
	// ClusterConfig sizes a cluster.
	ClusterConfig = rados.ClusterConfig
	// Client is a cluster client handle.
	Client = rados.Client
	// Image is a plain virtual disk image.
	Image = rbd.Image
	// EncryptedImage is the paper's per-sector-metadata encrypted image.
	EncryptedImage = core.EncryptedImage
	// Options selects scheme and layout.
	Options = core.Options
	// Scheme is the cipher construction.
	Scheme = core.Scheme
	// Layout is the IV placement.
	Layout = core.Layout
	// Time is a virtual timestamp.
	Time = vtime.Time
	// WorkloadSpec describes an fio-style workload.
	WorkloadSpec = fio.Spec
	// WorkloadResult is a workload measurement.
	WorkloadResult = fio.Result
	// Rekeyer drives an online key rotation (see internal/keymgr).
	Rekeyer = keymgr.Rekeyer
	// RekeyProgress is the persisted rekey cursor.
	RekeyProgress = keymgr.Progress
)

// Schemes and layouts.
const (
	SchemeLUKS2    = core.SchemeLUKS2    // deterministic XTS baseline (no metadata)
	SchemeXTSRand  = core.SchemeXTSRand  // the paper's random-IV XTS
	SchemeGCM      = core.SchemeGCM      // authenticated (nonce+tag metadata)
	SchemeEME2Det  = core.SchemeEME2Det  // wide-block, deterministic
	SchemeEME2Rand = core.SchemeEME2Rand // wide-block with random IV

	LayoutNone      = core.LayoutNone
	LayoutUnaligned = core.LayoutUnaligned // Fig. 2a
	LayoutObjectEnd = core.LayoutObjectEnd // Fig. 2b (the paper's winner)
	LayoutOMAP      = core.LayoutOMAP      // Fig. 2c
)

// NewCluster builds and wires a simulated cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return rados.NewCluster(cfg) }

// PaperClusterConfig mirrors the paper's §3.2 testbed: 3 OSD nodes with
// 9 NVMe disks each, 3-way replication, 4 MB objects, 100 Gb/s links.
func PaperClusterConfig() ClusterConfig { return rados.DefaultClusterConfig() }

// TestClusterConfig is a small, fast cluster for examples and tests.
func TestClusterConfig() ClusterConfig {
	cfg := rados.DefaultClusterConfig()
	cfg.DisksPerOSD = 2
	cfg.DiskSectors = (1 << 30) / 4096
	cfg.PGNum = 32
	cfg.Blob.ObjectCapacity = 1<<20 + 64<<10
	cfg.Blob.KVBytes = 64 << 20
	cfg.Blob.KV.MemtableBytes = 256 << 10
	cfg.Blob.KV.WALBytes = 4 << 20
	return cfg
}

// CreateEncryptedImage creates an image, formats encryption on it and
// opens it — the three-step flow collapsed for the common case. The
// facade stripes with 1 MiB objects so it works against both
// TestClusterConfig and PaperClusterConfig object capacities; the
// benchmark harness uses the paper's 4 MB striping via internal/rbd.
func CreateEncryptedImage(client *Client, pool, name string, size int64, passphrase []byte, opts Options) (*EncryptedImage, error) {
	const objectSize = 1 << 20
	if _, err := rbd.CreateWithObjectSize(0, client, pool, name, size, objectSize); err != nil {
		return nil, err
	}
	img, _, err := rbd.Open(0, client, pool, name)
	if err != nil {
		return nil, err
	}
	if _, err := core.Format(0, img, passphrase, opts); err != nil {
		return nil, err
	}
	enc, _, err := core.Load(0, img, passphrase)
	return enc, err
}

// OpenEncryptedImage opens an existing encrypted image.
func OpenEncryptedImage(client *Client, pool, name string, passphrase []byte) (*EncryptedImage, error) {
	img, _, err := rbd.Open(0, client, pool, name)
	if err != nil {
		return nil, err
	}
	enc, _, err := core.Load(0, img, passphrase)
	return enc, err
}

// RunWorkload executes an fio-style workload against any virtual-time
// block target (an EncryptedImage satisfies fio.Target, and — for
// discard mixes — fio.Discarder).
func RunWorkload(spec WorkloadSpec, target fio.Target, start Time) (WorkloadResult, error) {
	return fio.Run(spec, target, start)
}

// StartRekey begins an online key rotation on an encrypted image: a new
// key epoch is minted and a resumable background walk re-seals existing
// blocks while the image keeps serving IO. Drive it with Run (or Step).
func StartRekey(img *EncryptedImage) (*Rekeyer, error) {
	r, _, err := keymgr.Start(0, img)
	return r, err
}

// ResumeRekey reattaches to an interrupted key rotation after a client
// restart or crash.
func ResumeRekey(img *EncryptedImage) (*Rekeyer, error) {
	r, _, err := keymgr.Resume(0, img)
	return r, err
}
